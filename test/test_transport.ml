(* Tests for the transport layer: RTO estimation, congestion-control
   variants, the TCP sender/receiver engines, and lossy-path properties. *)

module Time = Sim_engine.Time
module Scheduler = Sim_engine.Scheduler
module Rng = Sim_engine.Rng
module Pool = Netsim.Packet_pool
open Transport

let check_float = Alcotest.(check (float 1e-9))
let check_close tol = Alcotest.(check (float tol))

(* ------------------------------------------------------------------ *)
(* Rto *)

let rto_before_samples () =
  let r = Rto.create Rto.default_params in
  check_float "initial" 3.0 (Rto.rto r);
  Alcotest.(check (option (float 0.))) "no srtt" None (Rto.srtt r)

let rto_after_sample () =
  let r = Rto.create Rto.default_params in
  Rto.observe r 1.0;
  (* srtt = 1.0, rttvar = 0.5 -> rto = 1 + 4*0.5 = 3, above min 1. *)
  check_float "first sample" 3.0 (Rto.rto r);
  (* Repeated identical samples shrink rttvar towards 0; rto floors at
     srtt + granularity but never below min_rto. *)
  for _ = 1 to 50 do
    Rto.observe r 1.0
  done;
  check_close 0.2 "converged" 1.1 (Rto.rto r)

let rto_backoff_doubles_and_caps () =
  let r = Rto.create Rto.default_params in
  Rto.observe r 1.0;
  let base = Rto.rto r in
  Rto.backoff r;
  check_float "doubled" (Stdlib.min 64. (base *. 2.)) (Rto.rto r);
  for _ = 1 to 20 do
    Rto.backoff r
  done;
  check_float "capped at max" 64. (Rto.rto r);
  Rto.reset_backoff r;
  check_float "reset" base (Rto.rto r)

let rto_sample_resets_backoff () =
  let r = Rto.create Rto.default_params in
  Rto.observe r 1.0;
  Rto.backoff r;
  Rto.observe r 1.0;
  Alcotest.(check bool) "sample cleared backoff" true (Rto.rto r < 4.)

let rto_quantization () =
  let r = Rto.create Rto.default_params in
  Rto.observe r 0.949;
  (* quantized to 0.9 with granularity 0.1 *)
  check_close 1e-6 "srtt quantized" 0.9 (Option.get (Rto.srtt r))

let rto_min_clamp () =
  let r = Rto.create Rto.default_params in
  for _ = 1 to 60 do
    Rto.observe r 0.01
  done;
  check_float "min rto" 1.0 (Rto.rto r)

let rto_ns_api_matches_float_api () =
  (* The integer-ns entry points are the hot-path versions of observe/rto;
     they must track the float API tick for tick. *)
  let a = Rto.create Rto.default_params in
  let b = Rto.create Rto.default_params in
  List.iter
    (fun ns ->
      Rto.observe a (float_of_int ns *. 1e-9);
      Rto.observe_ns b ns)
    [ 949_000_000; 1_000_000_000; 213_000_000; 3_700_000_000 ];
  check_float "same srtt" (Option.get (Rto.srtt a)) (Option.get (Rto.srtt b));
  check_float "same rttvar" (Option.get (Rto.rttvar a)) (Option.get (Rto.rttvar b));
  Alcotest.(check int) "rto_ns = of_sec (rto)"
    (Time.to_ns (Time.of_sec (Rto.rto a)))
    (Rto.rto_ns b);
  Rto.backoff b;
  let c = Rto.create Rto.default_params in
  Alcotest.(check int) "initial rto_ns"
    (Time.to_ns (Time.of_sec (Rto.rto c)))
    (Rto.rto_ns c)

(* ------------------------------------------------------------------ *)
(* Congestion-control variants (driven directly) *)

let info ?(ack = 1) ?(newly = 1) ?rtt ?(flight = 1) () =
  {
    Cc.ack;
    newly_acked = newly;
    rtt_ns =
      (match rtt with Some s -> int_of_float (s *. 1e9) | None -> -1);
    flight_before = flight;
  }

let reno_slow_start_then_avoidance () =
  let h = Reno.handle ~initial_ssthresh:4. ~max_window:100. in
  check_float "initial cwnd" 1. (h.Cc.cwnd ());
  h.Cc.on_new_ack (info ());
  check_float "ss +1" 2. (h.Cc.cwnd ());
  h.Cc.on_new_ack (info ~newly:2 ());
  check_float "ss doubling" 4. (h.Cc.cwnd ());
  (* at ssthresh: congestion avoidance, +1/cwnd per ack *)
  h.Cc.on_new_ack (info ());
  check_float "ca increment" 4.25 (h.Cc.cwnd ())

let reno_caps_at_max_window () =
  let h = Reno.handle ~initial_ssthresh:100. ~max_window:8. in
  h.Cc.on_new_ack (info ~newly:20 ());
  check_float "capped" 8. (h.Cc.cwnd ())

let reno_fast_recovery_cycle () =
  let h = Reno.handle ~initial_ssthresh:64. ~max_window:64. in
  h.Cc.on_new_ack (info ~newly:15 ());
  check_float "grown" 16. (h.Cc.cwnd ());
  h.Cc.enter_recovery ~flight:16 ~now:0.;
  check_float "ssthresh halved" 8. (h.Cc.ssthresh ());
  check_float "inflated" 11. (h.Cc.cwnd ());
  h.Cc.dup_ack_inflate ();
  check_float "inflate +1" 12. (h.Cc.cwnd ());
  h.Cc.on_full_ack (info ());
  check_float "deflated to ssthresh" 8. (h.Cc.cwnd ())

let reno_timeout_resets () =
  let h = Reno.handle ~initial_ssthresh:64. ~max_window:64. in
  h.Cc.on_new_ack (info ~newly:15 ());
  h.Cc.on_timeout ~flight:16 ~now:0.;
  check_float "cwnd 1" 1. (h.Cc.cwnd ());
  check_float "ssthresh halved" 8. (h.Cc.ssthresh ())

let reno_halving_floor () =
  let h = Reno.handle ~initial_ssthresh:64. ~max_window:64. in
  h.Cc.on_timeout ~flight:1 ~now:0.;
  check_float "ssthresh floor 2" 2. (h.Cc.ssthresh ())

let tahoe_loss_restarts_slow_start () =
  let h = Tahoe.handle ~initial_ssthresh:64. ~max_window:64. in
  Alcotest.(check bool) "no fast recovery" false h.Cc.uses_fast_recovery;
  h.Cc.on_new_ack (info ~newly:15 ());
  h.Cc.enter_recovery ~flight:16 ~now:0.;
  check_float "cwnd back to 1" 1. (h.Cc.cwnd ());
  check_float "ssthresh halved" 8. (h.Cc.ssthresh ())

let newreno_partial_ack () =
  let h = Newreno.handle ~initial_ssthresh:64. ~max_window:64. in
  Alcotest.(check bool) "partial stays" true h.Cc.partial_ack_stays;
  h.Cc.on_new_ack (info ~newly:15 ());
  h.Cc.enter_recovery ~flight:16 ~now:0.;
  let before = h.Cc.cwnd () in
  h.Cc.on_partial_ack (info ~newly:4 ());
  check_float "deflate by acked minus one" (before -. 3.) (h.Cc.cwnd ())

let vegas_epoch_adjustments () =
  let params = { Vegas.alpha = 1.; beta = 3.; gamma = 1. } in
  let h = Vegas.handle ~params ~initial_ssthresh:64. ~max_window:64. () in
  check_float "vegas starts at 2" 2. (h.Cc.cwnd ());
  (* End slow start: epoch with diff > gamma. baseRTT=1.0, rtt=2.0,
     cwnd=2 -> diff = 2*(1-0.5) = 1.0; need > 1, use rtt 3: diff=1.33. *)
  h.Cc.on_new_ack (info ~ack:1 ~rtt:1.0 ~flight:1 ());
  (* epoch_mark was 0, so ack=1 ends an epoch; base=1.0, mean=1.0, diff=0:
     still slow start, grow epoch toggles. *)
  h.Cc.on_new_ack (info ~ack:5 ~rtt:3.0 ~flight:2 ());
  (* This ack passes the new mark (1+1=2): epoch ends with mean rtt 3.0;
     diff = cwnd*(1-1/3) > 1 -> exit slow start with 7/8 decrease. *)
  let w = h.Cc.cwnd () in
  Alcotest.(check bool) "left slow start" true (w >= 2. && w < 4.);
  (* Now in CA. diff < alpha -> +1. Make an epoch with rtt == base. *)
  let mark = 5 + 2 in
  h.Cc.on_new_ack (info ~ack:(mark + 1) ~rtt:1.0 ~flight:3 ());
  check_float "ca linear increase" (w +. 1.) (h.Cc.cwnd ());
  (* diff > beta -> -1: rtt big. Next mark = prev ack + flight. *)
  let mark2 = mark + 1 + 3 in
  h.Cc.on_new_ack (info ~ack:(mark2 + 1) ~rtt:10.0 ~flight:3 ());
  check_float "ca linear decrease" w (h.Cc.cwnd ())

let vegas_gentler_recovery () =
  let h = Vegas.handle ~initial_ssthresh:64. ~max_window:64. () in
  (* Grow a bit in slow start. *)
  h.Cc.on_new_ack (info ~ack:1 ~newly:6 ~rtt:1.0 ());
  let w = h.Cc.cwnd () in
  h.Cc.enter_recovery ~flight:8 ~now:0.;
  check_float "3/4 decrease + inflation" ((w *. 0.75) +. 3.) (h.Cc.cwnd ());
  h.Cc.on_timeout ~flight:8 ~now:0.;
  check_float "timeout to 2" 2. (h.Cc.cwnd ())

let vegas_rejects_bad_params () =
  Alcotest.check_raises "beta < alpha"
    (Invalid_argument "Cc.make_ctx: bad alpha/beta/gamma") (fun () ->
      ignore
        (Vegas.handle
           ~params:{ Vegas.alpha = 3.; beta = 1.; gamma = 1. }
           ~initial_ssthresh:1. ~max_window:1. ()))

(* ------------------------------------------------------------------ *)
(* Tcp_sender driven by hand-crafted ACKs *)

type harness = {
  sched : Scheduler.t;
  pool : Pool.t;
  sender : Tcp_sender.t;
  outbox : Pool.handle list ref;
}

let make_harness ?(cc = `Reno) ?(adv_window = 64) ?(cwnd_validation = false)
    ?(limited_transmit = false) ?(pacing = false) ?(trace_cwnd = false) () =
  let sched = Scheduler.create () in
  let pool = Pool.create () in
  let outbox = ref [] in
  let cc =
    match cc with
    | `Reno -> Cc.Reno
    | `Tahoe -> Cc.Tahoe
    | `Newreno -> Cc.Newreno
  in
  let sender =
    Tcp_sender.create ~cwnd_validation ~limited_transmit ~pacing ~trace_cwnd sched
      ~pool ~cc ~rto_params:Rto.default_params ~flow:0 ~src:1 ~dst:0
      ~mss_bytes:1000 ~adv_window
      ~transmit:(fun p -> outbox := p :: !outbox)
  in
  { sched; pool; sender; outbox }

let sent_seqs h = List.rev_map (Pool.seq h.pool) !(h.outbox)

(* Drain the outbox, returning (seq, is_retransmit) in send order; the
   handles are freed (the harness is the network, and the network is done
   with them once the test has looked). *)
let take_outbox h =
  let out = List.rev !(h.outbox) in
  h.outbox := [];
  let described =
    List.map (fun p -> (Pool.seq h.pool p, Pool.is_retransmit h.pool p)) out
  in
  List.iter (Pool.free h.pool) out;
  described

let ack h n =
  let p =
    Pool.alloc_ack h.pool ~flow:0 ~src:0 ~dst:1 ~size_bytes:40
      ~sent_at:(Scheduler.now h.sched) ~ack:n ~ece:false ~sack:[] ()
  in
  Tcp_sender.handle_packet h.sender p;
  Pool.free h.pool p

let advance h dt = Scheduler.run ~until:(Time.add (Scheduler.now h.sched) (Time.of_sec dt)) h.sched

let sender_initial_window_one () =
  let h = make_harness () in
  Tcp_sender.write h.sender 10;
  Alcotest.(check (list int)) "only seq 0" [ 0 ] (sent_seqs h);
  Alcotest.(check int) "flight" 1 (Tcp_sender.flight h.sender);
  Alcotest.(check int) "backlog" 9 (Tcp_sender.backlog h.sender)

let sender_slow_start_doubling () =
  let h = make_harness () in
  Tcp_sender.write h.sender 100;
  ignore (take_outbox h);
  advance h 0.1;
  ack h 1;
  (* cwnd 2: sends 1 and 2 *)
  Alcotest.(check (list int)) "two more" [ 1; 2 ] (List.map fst (take_outbox h));
  advance h 0.1;
  ack h 3;
  (* cwnd 4: sends 3,4,5,6 *)
  Alcotest.(check int) "four more" 4 (List.length (take_outbox h));
  check_float "cwnd 4" 4. (Tcp_sender.cwnd h.sender)

let sender_respects_adv_window () =
  let h = make_harness ~adv_window:3 () in
  Tcp_sender.write h.sender 100;
  ignore (take_outbox h);
  advance h 0.1;
  ack h 1;
  advance h 0.1;
  ack h 3;
  (* cwnd would be 4 but adv window caps usable window at 3 *)
  Alcotest.(check int) "flight capped" 3 (Tcp_sender.flight h.sender)

let sender_fast_retransmit_on_three_dupacks () =
  let h = make_harness () in
  Tcp_sender.write h.sender 20;
  ignore (take_outbox h);
  advance h 0.1;
  ack h 1;
  advance h 0.1;
  ack h 3;
  (* flight now seqs 3..6 *)
  ignore (take_outbox h);
  (* Loss of 3: three dup ACKs for 3. *)
  ack h 3;
  ack h 3;
  Alcotest.(check int) "not yet" 0 (List.length (take_outbox h));
  ack h 3;
  let out = take_outbox h in
  Alcotest.(check bool) "retransmitted head" true
    (List.exists (fun (seq, rtx) -> seq = 3 && rtx) out);
  Alcotest.(check bool) "in recovery" true (Tcp_sender.in_recovery h.sender);
  let st = Tcp_sender.stats h.sender in
  Alcotest.(check int) "fast rtx counted" 1 st.Tcp_stats.fast_retransmits;
  Alcotest.(check int) "dup acks counted" 3 st.Tcp_stats.dup_acks;
  (* A new cumulative ACK ends recovery and deflates. *)
  advance h 0.1;
  ack h 7;
  Alcotest.(check bool) "recovery over" false (Tcp_sender.in_recovery h.sender);
  check_float "deflated to ssthresh" (Tcp_sender.ssthresh h.sender)
    (Tcp_sender.cwnd h.sender)

let sender_timeout_and_backoff () =
  let h = make_harness () in
  Tcp_sender.write h.sender 5;
  ignore (take_outbox h);
  (* No ACKs: initial RTO 3 s. *)
  advance h 3.5;
  let st = Tcp_sender.stats h.sender in
  Alcotest.(check int) "one timeout" 1 st.Tcp_stats.timeouts;
  Alcotest.(check bool) "head retransmitted" true
    (List.exists (fun (seq, rtx) -> seq = 0 && rtx) (take_outbox h));
  check_float "cwnd collapsed" 1. (Tcp_sender.cwnd h.sender);
  (* Backed-off timer: next expiry ~6 s later. *)
  advance h 5.;
  Alcotest.(check int) "no early second timeout" 1 (Tcp_sender.stats h.sender).Tcp_stats.timeouts;
  advance h 2.;
  Alcotest.(check int) "second timeout" 2 (Tcp_sender.stats h.sender).Tcp_stats.timeouts

let sender_no_timeout_when_idle () =
  let h = make_harness () in
  Tcp_sender.write h.sender 1;
  ignore (take_outbox h);
  advance h 0.1;
  ack h 1;
  (* Flight empty: timer cancelled, nothing fires. *)
  advance h 10.;
  Alcotest.(check int) "no timeouts" 0 (Tcp_sender.stats h.sender).Tcp_stats.timeouts

let sender_ignores_old_acks () =
  let h = make_harness () in
  Tcp_sender.write h.sender 5;
  ignore (take_outbox h);
  advance h 0.1;
  ack h 1;
  ack h 0;
  (* stale: below snd_una *)
  Alcotest.(check int) "snd_una unchanged" 1 (Tcp_sender.snd_una h.sender);
  Alcotest.(check int) "no dup acks counted" 0 (Tcp_sender.stats h.sender).Tcp_stats.dup_acks

let sender_dupacks_ignored_when_nothing_outstanding () =
  let h = make_harness () in
  Tcp_sender.write h.sender 1;
  ignore (take_outbox h);
  advance h 0.1;
  ack h 1;
  ack h 1;
  ack h 1;
  ack h 1;
  Alcotest.(check int) "no fast rtx" 0 (Tcp_sender.stats h.sender).Tcp_stats.fast_retransmits

let sender_tahoe_no_recovery_state () =
  let h = make_harness ~cc:`Tahoe () in
  Tcp_sender.write h.sender 20;
  ignore (take_outbox h);
  advance h 0.1;
  ack h 1;
  advance h 0.1;
  ack h 3;
  ignore (take_outbox h);
  ack h 3;
  ack h 3;
  ack h 3;
  Alcotest.(check bool) "tahoe never in recovery" false (Tcp_sender.in_recovery h.sender);
  check_float "cwnd 1" 1. (Tcp_sender.cwnd h.sender);
  Alcotest.(check int) "fast rtx counted" 1 (Tcp_sender.stats h.sender).Tcp_stats.fast_retransmits

let sender_cwnd_trace_records () =
  let h = make_harness ~trace_cwnd:true () in
  Tcp_sender.write h.sender 10;
  advance h 0.1;
  ack h 1;
  Alcotest.(check bool) "trace non-empty" true
    (Netstats.Series.length (Tcp_sender.cwnd_trace h.sender) >= 2)

let sender_cwnd_trace_off_by_default () =
  let h = make_harness () in
  Tcp_sender.write h.sender 10;
  advance h 0.1;
  ack h 1;
  Alcotest.(check int) "no trace unless requested" 0
    (Netstats.Series.length (Tcp_sender.cwnd_trace h.sender))

let ack_ece h n =
  let p =
    Pool.alloc_ack h.pool ~flow:0 ~src:0 ~dst:1 ~size_bytes:40
      ~sent_at:(Scheduler.now h.sched) ~ack:n ~ece:true ~sack:[] ()
  in
  Tcp_sender.handle_packet h.sender p;
  Pool.free h.pool p

let sender_ece_halves_once_per_rtt () =
  let h = make_harness () in
  Tcp_sender.write h.sender 100;
  ignore (take_outbox h);
  advance h 0.1;
  ack h 1;
  advance h 0.1;
  ack h 3;
  advance h 0.1;
  ack h 7;
  (* cwnd = 8, flight 8. Two ECE acks in the same RTT: one reaction. *)
  let before = Tcp_sender.cwnd h.sender in
  ack_ece h 8;
  let after_first = Tcp_sender.cwnd h.sender in
  Alcotest.(check bool) "window reduced" true (after_first < before);
  ack_ece h 9;
  check_float "second ECE ignored within the RTT"
    (after_first +. 1. /. after_first) (* the new ACK still grows by 1/cwnd *)
    (Tcp_sender.cwnd h.sender)

let sender_non_ecn_ignores_ece () =
  let h = make_harness () in
  Tcp_sender.write h.sender 10;
  ignore (take_outbox h);
  advance h 0.1;
  ack h 1;
  let before = Tcp_sender.cwnd h.sender in
  ack_ece h 1;
  (* duplicate ACK with ECE: reaction happens (sender always honours ECE;
     capability only controls the flag on outgoing data) *)
  Alcotest.(check bool) "reacted" true (Tcp_sender.cwnd h.sender <= before)

let sender_cwnd_validation_blocks_idle_growth () =
  (* App-limited: only 4 segments ever written. After seq 3 goes out the
     flow has 1 in flight against a window of 4, so the final ACK must not
     grow a validated window. *)
  let grow validation =
    let h = make_harness ~cwnd_validation:validation () in
    Tcp_sender.write h.sender 4;
    ignore (take_outbox h);
    advance h 0.1;
    ack h 1;
    (* cwnd 2, sends 1 and 2 *)
    advance h 0.1;
    ack h 3;
    (* cwnd 4, sends 3 (backlog empty): flight 1 *)
    let before = Tcp_sender.cwnd h.sender in
    advance h 0.1;
    ack h 4;
    Tcp_sender.cwnd h.sender -. before
  in
  Alcotest.(check bool) "no growth with validation" true (grow true <= 0.);
  Alcotest.(check bool) "growth without" true (grow false > 0.)

let sender_limited_transmit_releases_segments () =
  let run limited =
    let h = make_harness ~limited_transmit:limited () in
    Tcp_sender.write h.sender 50;
    ignore (take_outbox h);
    advance h 0.1;
    ack h 1;
    advance h 0.1;
    ack h 3;
    (* window 4, flight 4 (seqs 3-6). *)
    ignore (take_outbox h);
    ack h 3;
    ack h 3;
    List.length (take_outbox h)
  in
  Alcotest.(check int) "two new segments on first two dupacks" 2 (run true);
  Alcotest.(check int) "nothing without RFC 3042" 0 (run false)

let sender_pacing_spreads_window () =
  (* With srtt established at ~1 s and cwnd 4, a paced sender must space
     new segments ~250 ms apart instead of releasing them back-to-back. *)
  let h = make_harness ~pacing:true () in
  Tcp_sender.write h.sender 100;
  ignore (take_outbox h);
  advance h 1.0;
  ack h 1;
  (* srtt ~ 1 s now; cwnd 2. *)
  advance h 1.0;
  ack h 2;
  ignore (take_outbox h);
  (* cwnd 3: watch the next sends spread out. *)
  advance h 0.05;
  let immediately = List.length (take_outbox h) in
  advance h 2.0;
  let later = List.length (take_outbox h) in
  Alcotest.(check bool)
    (Printf.sprintf "at most 1 right away (got %d), rest paced (%d later)"
       immediately later)
    true
    (immediately <= 1 && later >= 1)

let loop_pacing_transfer_completes () =
  (* End-to-end sanity: a paced sender still completes a transfer. *)
  let lsched = Scheduler.create () in
  let pool = Pool.create () in
  let receiver_cell = ref None and sender_cell = ref None in
  let wire target p =
    ignore
      (Scheduler.after lsched (Time.of_sec 0.05) (fun () ->
           (match target with
           | `R -> Tcp_receiver.handle_packet (Option.get !receiver_cell) p
           | `S -> Tcp_sender.handle_packet (Option.get !sender_cell) p);
           Pool.free pool p))
  in
  let sender =
    Tcp_sender.create ~pacing:true lsched ~pool ~cc:Cc.Reno
      ~rto_params:Rto.default_params ~flow:0 ~src:1 ~dst:0 ~mss_bytes:1000
      ~adv_window:64
      ~transmit:(fun p -> wire `R p)
  in
  let receiver =
    Tcp_receiver.create lsched ~pool ~flow:0 ~src:0 ~dst:1 ~ack_bytes:40
      ~delayed_ack:false ~adv_window:64
      ~transmit:(fun p -> wire `S p)
  in
  sender_cell := Some sender;
  receiver_cell := Some receiver;
  Tcp_sender.write sender 200;
  Scheduler.run ~until:(Time.of_sec 120.) lsched;
  Alcotest.(check int) "all delivered" 200 (Tcp_receiver.delivered receiver)

(* ------------------------------------------------------------------ *)
(* Tcp_receiver *)

type rharness = {
  rsched : Scheduler.t;
  rpool : Pool.t;
  receiver : Tcp_receiver.t;
  acks : Pool.handle list ref;
}

let make_receiver ?(delayed_ack = false) ?(sack = false) () =
  let rsched = Scheduler.create () in
  let rpool = Pool.create () in
  let acks = ref [] in
  let receiver =
    Tcp_receiver.create ~sack rsched ~pool:rpool ~flow:0 ~src:0 ~dst:1
      ~ack_bytes:40 ~delayed_ack ~adv_window:64
      ~transmit:(fun p -> acks := p :: !acks)
  in
  { rsched; rpool; receiver; acks }

let data rh seq =
  Pool.alloc_data rh.rpool ~flow:0 ~src:1 ~dst:0 ~size_bytes:1000
    ~sent_at:(Scheduler.now rh.rsched) ~seq ~is_retransmit:false ()

(* Feed a data segment and free it afterwards (handle_packet reads only). *)
let recv rh seq =
  let p = data rh seq in
  Tcp_receiver.handle_packet rh.receiver p;
  Pool.free rh.rpool p

let ack_values rh =
  List.rev_map
    (fun p ->
      if Pool.kind rh.rpool p = Pool.Tcp_ack then Pool.ack rh.rpool p else -1)
    !(rh.acks)

let receiver_in_order () =
  let rh = make_receiver () in
  List.iter (recv rh) [ 0; 1; 2 ];
  Alcotest.(check int) "delivered" 3 (Tcp_receiver.delivered rh.receiver);
  Alcotest.(check (list int)) "cumulative acks" [ 1; 2; 3 ] (ack_values rh)

let receiver_out_of_order_dup_acks () =
  let rh = make_receiver () in
  List.iter (recv rh) [ 0; 2; 3; 4 ];
  (* 2,3,4 out of order: each produces a duplicate ACK of 1. *)
  Alcotest.(check (list int)) "dup acks" [ 1; 1; 1; 1 ] (ack_values rh);
  Alcotest.(check int) "only seq 0 delivered" 1 (Tcp_receiver.delivered rh.receiver);
  (* Filling the hole delivers everything buffered. *)
  recv rh 1;
  Alcotest.(check int) "all delivered" 5 (Tcp_receiver.delivered rh.receiver);
  Alcotest.(check (list int)) "jump ack" [ 1; 1; 1; 1; 5 ] (ack_values rh)

let receiver_duplicate_data () =
  let rh = make_receiver () in
  recv rh 0;
  recv rh 0;
  Alcotest.(check int) "delivered once" 1 (Tcp_receiver.delivered rh.receiver);
  Alcotest.(check int) "dup discarded" 1 (Tcp_receiver.duplicates_discarded rh.receiver);
  Alcotest.(check (list int)) "re-ack" [ 1; 1 ] (ack_values rh)

let receiver_delayed_ack_every_second () =
  let rh = make_receiver ~delayed_ack:true () in
  recv rh 0;
  Alcotest.(check int) "first held" 0 (List.length !(rh.acks));
  recv rh 1;
  Alcotest.(check (list int)) "acked on second" [ 2 ] (ack_values rh)

let receiver_delayed_ack_timer () =
  let rh = make_receiver ~delayed_ack:true () in
  recv rh 0;
  Scheduler.run ~until:(Time.of_sec 0.1) rh.rsched;
  Alcotest.(check int) "still held at 100ms" 0 (List.length !(rh.acks));
  Scheduler.run ~until:(Time.of_sec 0.25) rh.rsched;
  Alcotest.(check (list int)) "timer fired by 250ms" [ 1 ] (ack_values rh)

let last_sack rh =
  match !(rh.acks) with
  | p :: _ when Pool.kind rh.rpool p = Pool.Tcp_ack -> Pool.sack rh.rpool p
  | _ -> []

let receiver_sack_blocks () =
  let rh = make_receiver ~sack:true () in
  (* Receive 0, then 2,3, then 6: two out-of-order blocks. *)
  recv rh 0;
  Alcotest.(check (list (pair int int))) "no blocks in order" [] (last_sack rh);
  recv rh 2;
  recv rh 3;
  Alcotest.(check (list (pair int int))) "one block" [ (2, 4) ] (last_sack rh);
  recv rh 6;
  Alcotest.(check (list (pair int int))) "two blocks" [ (2, 4); (6, 7) ] (last_sack rh);
  (* Filling the first hole merges and shrinks the report. *)
  recv rh 1;
  Alcotest.(check (list (pair int int))) "remaining block" [ (6, 7) ] (last_sack rh)

let receiver_no_sack_blocks_when_disabled () =
  let rh = make_receiver () in
  recv rh 3;
  Alcotest.(check (list (pair int int))) "empty" [] (last_sack rh)

let receiver_echoes_ce_as_ece () =
  let rh = make_receiver () in
  let p = data rh 0 in
  Pool.set_ecn_ce rh.rpool p;
  Tcp_receiver.handle_packet rh.receiver p;
  Pool.free rh.rpool p;
  (* The ACK for the marked segment carries ECE; the next one does not. *)
  recv rh 1;
  let eces =
    List.rev_map
      (fun p ->
        Pool.kind rh.rpool p = Pool.Tcp_ack && Pool.ece rh.rpool p)
      !(rh.acks)
  in
  Alcotest.(check (list bool)) "ece once" [ true; false ] eces

let receiver_delayed_ack_ooo_immediate () =
  let rh = make_receiver ~delayed_ack:true () in
  recv rh 3;
  Alcotest.(check (list int)) "immediate dup ack" [ 0 ] (ack_values rh)

(* ------------------------------------------------------------------ *)
(* Sender + receiver end-to-end over a simple wire *)

type loop = {
  lsched : Scheduler.t;
  lpool : Pool.t;
  lsender : Tcp_sender.t;
  lreceiver : Tcp_receiver.t;
  data_sent : int ref;
}

(* Wire both directions with a fixed one-way delay; [drop] decides data
   packet loss (given the pool and the handle). ACKs are never dropped.
   The wire owns every packet in flight: it frees after the far end has
   read it, and a dropped packet is freed on the spot. *)
let make_loop ?(cc = `Reno) ?(delay = 0.05) ~drop () =
  let lsched = Scheduler.create () in
  let lpool = Pool.create () in
  let data_sent = ref 0 in
  let receiver_cell = ref None and sender_cell = ref None in
  let wire target p =
    ignore
      (Scheduler.after lsched (Time.of_sec delay) (fun () ->
           (match target with
           | `To_receiver -> Tcp_receiver.handle_packet (Option.get !receiver_cell) p
           | `To_sender -> Tcp_sender.handle_packet (Option.get !sender_cell) p);
           Pool.free lpool p))
  in
  let cc =
    match cc with
    | `Reno -> Cc.Reno
    | `Newreno -> Cc.Newreno
    | `Tahoe -> Cc.Tahoe
    | `Vegas -> Cc.Vegas
  in
  let lsender =
    Tcp_sender.create lsched ~pool:lpool ~cc ~rto_params:Rto.default_params ~flow:0
      ~src:1 ~dst:0 ~mss_bytes:1000 ~adv_window:64
      ~transmit:(fun p ->
        incr data_sent;
        if drop lpool p then Pool.free lpool p else wire `To_receiver p)
  in
  let lreceiver =
    Tcp_receiver.create lsched ~pool:lpool ~flow:0 ~src:0 ~dst:1 ~ack_bytes:40
      ~delayed_ack:false ~adv_window:64
      ~transmit:(fun p -> wire `To_sender p)
  in
  sender_cell := Some lsender;
  receiver_cell := Some lreceiver;
  { lsched; lpool; lsender; lreceiver; data_sent }

let loop_lossless_transfer () =
  let l = make_loop ~drop:(fun _ _ -> false) () in
  Tcp_sender.write l.lsender 200;
  Scheduler.run ~until:(Time.of_sec 60.) l.lsched;
  Alcotest.(check int) "all delivered" 200 (Tcp_receiver.delivered l.lreceiver);
  Alcotest.(check int) "no retransmits" 0 (Tcp_sender.stats l.lsender).Tcp_stats.retransmits;
  Alcotest.(check int) "no timeouts" 0 (Tcp_sender.stats l.lsender).Tcp_stats.timeouts;
  Alcotest.(check int) "wire leaked nothing" 0 (Pool.live l.lpool)

(* Drop the first transmission of [seq] only. *)
let drop_first_transmission_of seq =
  let dropped = ref false in
  fun pool p ->
    if
      (not !dropped)
      && Pool.kind pool p = Pool.Tcp_data
      && Pool.seq pool p = seq
      && not (Pool.is_retransmit pool p)
    then begin
      dropped := true;
      true
    end
    else false

let loop_single_loss_fast_retransmit () =
  let l = make_loop ~drop:(drop_first_transmission_of 10) () in
  Tcp_sender.write l.lsender 100;
  Scheduler.run ~until:(Time.of_sec 60.) l.lsched;
  Alcotest.(check int) "all delivered despite loss" 100 (Tcp_receiver.delivered l.lreceiver);
  let st = Tcp_sender.stats l.lsender in
  Alcotest.(check int) "recovered by fast retransmit" 1 st.Tcp_stats.fast_retransmits;
  Alcotest.(check int) "no timeout needed" 0 st.Tcp_stats.timeouts

let loop_loss_of_last_segment_needs_timeout () =
  (* The final segment has no successors to generate dup ACKs: only the
     retransmission timer can recover it. *)
  let l = make_loop ~drop:(drop_first_transmission_of 4) () in
  Tcp_sender.write l.lsender 5;
  Scheduler.run ~until:(Time.of_sec 60.) l.lsched;
  Alcotest.(check int) "all delivered" 5 (Tcp_receiver.delivered l.lreceiver);
  Alcotest.(check bool) "timeout used" true
    ((Tcp_sender.stats l.lsender).Tcp_stats.timeouts >= 1)

let loop_random_loss_property ~cc ~seed ~loss_rate ~count () =
  let rng = Rng.create ~seed in
  let drop pool p = Pool.is_data pool p && Rng.bool rng loss_rate in
  let l = make_loop ~cc ~drop () in
  Tcp_sender.write l.lsender count;
  Scheduler.run ~until:(Time.of_sec 2000.) l.lsched;
  Alcotest.(check int)
    (Printf.sprintf "complete under %.0f%% loss" (loss_rate *. 100.))
    count
    (Tcp_receiver.delivered l.lreceiver);
  Alcotest.(check bool) "loss caused retransmits" true
    ((Tcp_sender.stats l.lsender).Tcp_stats.retransmits > 0);
  Alcotest.(check int) "wire leaked nothing" 0 (Pool.live l.lpool)

let loop_reno_random_loss () =
  loop_random_loss_property ~cc:`Reno ~seed:101L ~loss_rate:0.05 ~count:500 ()

let loop_newreno_random_loss () =
  loop_random_loss_property ~cc:`Newreno ~seed:102L ~loss_rate:0.10 ~count:500 ()

let loop_tahoe_random_loss () =
  loop_random_loss_property ~cc:`Tahoe ~seed:103L ~loss_rate:0.05 ~count:300 ()

let loop_vegas_random_loss () =
  loop_random_loss_property ~cc:`Vegas ~seed:104L ~loss_rate:0.05 ~count:300 ()

let loop_heavy_loss_still_completes () =
  loop_random_loss_property ~cc:`Reno ~seed:105L ~loss_rate:0.3 ~count:100 ()

(* ------------------------------------------------------------------ *)
(* SACK sender over the wire *)

(* Like make_loop but with SACK enabled on both ends. *)
let make_sack_loop ?(delay = 0.05) ~drop () =
  let lsched = Scheduler.create () in
  let lpool = Pool.create () in
  let data_sent = ref 0 in
  let receiver_cell = ref None and sender_cell = ref None in
  let wire target p =
    ignore
      (Scheduler.after lsched (Time.of_sec delay) (fun () ->
           (match target with
           | `To_receiver -> Tcp_receiver.handle_packet (Option.get !receiver_cell) p
           | `To_sender -> Tcp_sender.handle_packet (Option.get !sender_cell) p);
           Pool.free lpool p))
  in
  let lsender =
    Tcp_sender.create ~sack:true lsched ~pool:lpool ~cc:Cc.Sack
      ~rto_params:Rto.default_params
      ~flow:0 ~src:1 ~dst:0 ~mss_bytes:1000 ~adv_window:64
      ~transmit:(fun p ->
        incr data_sent;
        if drop lpool p then Pool.free lpool p else wire `To_receiver p)
  in
  let lreceiver =
    Tcp_receiver.create ~sack:true lsched ~pool:lpool ~flow:0 ~src:0 ~dst:1
      ~ack_bytes:40 ~delayed_ack:false ~adv_window:64
      ~transmit:(fun p -> wire `To_sender p)
  in
  sender_cell := Some lsender;
  receiver_cell := Some lreceiver;
  { lsched; lpool; lsender; lreceiver; data_sent }

(* Drop the first transmission of each sequence number in [seqs]. *)
let drop_first_transmissions seqs =
  let dropped = Hashtbl.create 4 in
  fun pool p ->
    let seq = if Pool.kind pool p = Pool.Tcp_data then Pool.seq pool p else -1 in
    if List.mem seq seqs && (not (Pool.is_retransmit pool p))
       && not (Hashtbl.mem dropped seq)
    then begin
      Hashtbl.replace dropped seq ();
      true
    end
    else false

let sack_recovers_multiple_losses_without_timeout () =
  (* Drop three segments of one window. Reno would need timeouts; SACK's
     scoreboard retransmits all three holes inside one recovery. *)
  let l = make_sack_loop ~drop:(drop_first_transmissions [ 10; 12; 14 ]) () in
  Tcp_sender.write l.lsender 100;
  Scheduler.run ~until:(Time.of_sec 60.) l.lsched;
  Alcotest.(check int) "all delivered" 100 (Tcp_receiver.delivered l.lreceiver);
  let st = Tcp_sender.stats l.lsender in
  Alcotest.(check int) "no timeout" 0 st.Tcp_stats.timeouts;
  Alcotest.(check int) "exactly the three holes resent" 3 st.Tcp_stats.retransmits

let reno_same_losses_needs_timeout () =
  (* The contrast case for the test above, same drop pattern under Reno. *)
  let l = make_loop ~cc:`Reno ~drop:(drop_first_transmissions [ 10; 12; 14 ]) () in
  Tcp_sender.write l.lsender 100;
  Scheduler.run ~until:(Time.of_sec 60.) l.lsched;
  Alcotest.(check int) "still completes" 100 (Tcp_receiver.delivered l.lreceiver);
  Alcotest.(check bool) "but pays extra recovery rounds" true
    ((Tcp_sender.stats l.lsender).Tcp_stats.timeouts >= 1
    || (Tcp_sender.stats l.lsender).Tcp_stats.fast_retransmits >= 2)

let sack_random_loss_completes () =
  let rng = Rng.create ~seed:106L in
  let drop pool p = Pool.is_data pool p && Rng.bool rng 0.1 in
  let l = make_sack_loop ~drop () in
  Tcp_sender.write l.lsender 500;
  Scheduler.run ~until:(Time.of_sec 2000.) l.lsched;
  Alcotest.(check int) "complete under 10% loss" 500
    (Tcp_receiver.delivered l.lreceiver)

(* ------------------------------------------------------------------ *)
(* Flow groups: attach/detach lifecycle over the shared tables *)

let stale_exn = Invalid_argument "Flow_table: stale or freed flow handle"

let group_attach_detach_accounting () =
  let sched = Scheduler.create () in
  let pool = Pool.create () in
  let sg =
    Tcp_sender.create_group ~capacity:8 sched ~pool ~cc:Cc.Reno
      ~rto_params:Rto.default_params ~mss_bytes:1000 ~adv_window:8
      ~transmit:(fun ~flow:_ _ -> ())
  in
  let rg =
    Tcp_receiver.create_group ~capacity:8 sched ~pool ~ack_bytes:40
      ~delayed_ack:false ~adv_window:8
      ~transmit:(fun ~flow:_ _ -> ())
  in
  let senders =
    List.init 8 (fun i -> Tcp_sender.attach sg ~flow:i ~src:(100 + i) ~dst:0 ())
  in
  let receivers =
    List.init 8 (fun i -> Tcp_receiver.attach rg ~flow:i ~src:0 ~dst:(100 + i) ())
  in
  Alcotest.(check int) "sender rows live" 8
    (Netsim.Flow_table.live (Tcp_sender.table sg));
  Alcotest.(check int) "receiver rows live" 8
    (Netsim.Flow_table.live (Tcp_receiver.table rg));
  Alcotest.(check int) "pre-size held (sender)" 0
    (Netsim.Flow_table.growth_count (Tcp_sender.table sg));
  Alcotest.(check int) "pre-size held (receiver)" 0
    (Netsim.Flow_table.growth_count (Tcp_receiver.table rg));
  List.iter Tcp_sender.detach senders;
  List.iter Tcp_receiver.detach receivers;
  Alcotest.(check int) "sender table drained" 0
    (Netsim.Flow_table.live (Tcp_sender.table sg));
  Alcotest.(check int) "receiver table drained" 0
    (Netsim.Flow_table.live (Tcp_receiver.table rg))

let group_detached_flow_raises () =
  let sched = Scheduler.create () in
  let pool = Pool.create () in
  let sg =
    Tcp_sender.create_group sched ~pool ~cc:Cc.Reno
      ~rto_params:Rto.default_params ~mss_bytes:1000 ~adv_window:8
      ~transmit:(fun ~flow:_ _ -> ())
  in
  let s = Tcp_sender.attach sg ~flow:0 ~src:1 ~dst:0 () in
  Tcp_sender.write s 3;
  Tcp_sender.detach s;
  Alcotest.check_raises "write after detach" stale_exn (fun () ->
      Tcp_sender.write s 1);
  Alcotest.check_raises "read after detach" stale_exn (fun () ->
      ignore (Tcp_sender.cwnd s));
  Alcotest.check_raises "double detach" stale_exn (fun () -> Tcp_sender.detach s);
  let rg =
    Tcp_receiver.create_group sched ~pool ~ack_bytes:40 ~delayed_ack:false
      ~adv_window:8
      ~transmit:(fun ~flow:_ _ -> ())
  in
  let r = Tcp_receiver.attach rg ~flow:0 ~src:0 ~dst:1 () in
  Tcp_receiver.detach r;
  Alcotest.check_raises "receiver read after detach" stale_exn (fun () ->
      ignore (Tcp_receiver.delivered r))

let group_detach_cancels_timers () =
  (* A detached sender's RTO must never fire: detach while a
     retransmission timer is pending, then run the clock far past it. *)
  let sched = Scheduler.create () in
  let pool = Pool.create () in
  let sent = ref [] in
  let sg =
    Tcp_sender.create_group sched ~pool ~cc:Cc.Reno
      ~rto_params:Rto.default_params ~mss_bytes:1000 ~adv_window:8
      ~transmit:(fun ~flow:_ p -> sent := p :: !sent)
  in
  let s = Tcp_sender.attach sg ~flow:0 ~src:1 ~dst:0 () in
  Tcp_sender.write s 1;
  List.iter (Pool.free pool) !sent;
  sent := [];
  Tcp_sender.detach s;
  Scheduler.run ~until:(Time.of_sec 30.) sched;
  Alcotest.(check int) "no retransmission after detach" 0 (List.length !sent);
  Alcotest.(check int) "no packet leaked" 0 (Pool.live pool)

let group_recycled_row_is_fresh () =
  (* Detach then attach reuses the row; the newcomer must start from a
     clean window, not inherit the predecessor's counters. *)
  let sched = Scheduler.create () in
  let pool = Pool.create () in
  let sent = ref [] in
  let sg =
    Tcp_sender.create_group ~capacity:1 sched ~pool ~cc:Cc.Reno
      ~rto_params:Rto.default_params ~mss_bytes:1000 ~adv_window:8
      ~transmit:(fun ~flow:_ p -> sent := p :: !sent)
  in
  let a = Tcp_sender.attach sg ~flow:0 ~src:1 ~dst:0 () in
  Tcp_sender.write a 5;
  List.iter (Pool.free pool) !sent;
  sent := [];
  Tcp_sender.detach a;
  let b = Tcp_sender.attach sg ~flow:1 ~src:2 ~dst:0 () in
  check_float "fresh cwnd" 1. (Tcp_sender.cwnd b);
  Alcotest.(check int) "fresh backlog" 0 (Tcp_sender.backlog b);
  Alcotest.(check int) "fresh snd_una" 0 (Tcp_sender.snd_una b);
  Alcotest.(check int) "fresh stats" 0
    (Tcp_sender.stats b).Tcp_stats.segments_sent;
  Alcotest.check_raises "old handle is dead" stale_exn (fun () ->
      ignore (Tcp_sender.flight a));
  Tcp_sender.detach b;
  List.iter (Pool.free pool) !sent

let receiver_rejects_seq_beyond_window () =
  let rh = make_receiver () in
  (* adv_window 64 -> reassembly table of 128 slots; a segment 128 past
     expected cannot be represented and must fail loudly. *)
  Alcotest.check_raises "beyond reassembly window"
    (Invalid_argument "Tcp_receiver: sequence beyond reassembly window")
    (fun () -> recv rh 128)

(* ------------------------------------------------------------------ *)
(* Udp *)

let udp_immediate_transmission () =
  let sched = Scheduler.create () in
  let pool = Pool.create () in
  let out = ref [] in
  let s =
    Udp.create_sender sched ~pool ~flow:0 ~src:1 ~dst:0 ~size_bytes:500
      ~transmit:(fun p -> out := p :: !out)
  in
  Udp.write s 3;
  Alcotest.(check int) "all sent now" 3 (List.length !out);
  Alcotest.(check int) "sent counter" 3 (Udp.sent s);
  let r = Udp.create_receiver ~pool () in
  List.iter (Udp.handle_packet r) !out;
  List.iter (Pool.free pool) !out;
  Alcotest.(check int) "received" 3 (Udp.received r);
  Alcotest.(check int) "drained" 0 (Pool.live pool)

let udp_ignores_tcp () =
  let pool = Pool.create () in
  let r = Udp.create_receiver ~pool () in
  let p =
    Pool.alloc_ack pool ~flow:0 ~src:1 ~dst:0 ~size_bytes:40 ~sent_at:Time.zero
      ~ack:1 ~ece:false ~sack:[] ()
  in
  Udp.handle_packet r p;
  Pool.free pool p;
  Alcotest.(check int) "not counted" 0 (Udp.received r)

let suite =
  [
    ( "transport.rto",
      [
        Alcotest.test_case "initial value" `Quick rto_before_samples;
        Alcotest.test_case "after samples" `Quick rto_after_sample;
        Alcotest.test_case "backoff doubles and caps" `Quick rto_backoff_doubles_and_caps;
        Alcotest.test_case "sample resets backoff" `Quick rto_sample_resets_backoff;
        Alcotest.test_case "quantization" `Quick rto_quantization;
        Alcotest.test_case "min clamp" `Quick rto_min_clamp;
        Alcotest.test_case "integer-ns api matches" `Quick rto_ns_api_matches_float_api;
      ] );
    ( "transport.cc",
      [
        Alcotest.test_case "reno slow start / avoidance" `Quick reno_slow_start_then_avoidance;
        Alcotest.test_case "reno max window cap" `Quick reno_caps_at_max_window;
        Alcotest.test_case "reno fast recovery cycle" `Quick reno_fast_recovery_cycle;
        Alcotest.test_case "reno timeout reset" `Quick reno_timeout_resets;
        Alcotest.test_case "halving floor of 2" `Quick reno_halving_floor;
        Alcotest.test_case "tahoe restarts slow start" `Quick tahoe_loss_restarts_slow_start;
        Alcotest.test_case "newreno partial ack" `Quick newreno_partial_ack;
        Alcotest.test_case "vegas epoch adjustments" `Quick vegas_epoch_adjustments;
        Alcotest.test_case "vegas gentler recovery" `Quick vegas_gentler_recovery;
        Alcotest.test_case "vegas parameter validation" `Quick vegas_rejects_bad_params;
      ] );
    ( "transport.sender",
      [
        Alcotest.test_case "initial window of one" `Quick sender_initial_window_one;
        Alcotest.test_case "slow-start doubling" `Quick sender_slow_start_doubling;
        Alcotest.test_case "advertised window cap" `Quick sender_respects_adv_window;
        Alcotest.test_case "fast retransmit on 3 dup ACKs" `Quick
          sender_fast_retransmit_on_three_dupacks;
        Alcotest.test_case "timeout and exponential backoff" `Quick sender_timeout_and_backoff;
        Alcotest.test_case "no timeout when idle" `Quick sender_no_timeout_when_idle;
        Alcotest.test_case "old acks ignored" `Quick sender_ignores_old_acks;
        Alcotest.test_case "dup acks need outstanding data" `Quick
          sender_dupacks_ignored_when_nothing_outstanding;
        Alcotest.test_case "tahoe loss handling" `Quick sender_tahoe_no_recovery_state;
        Alcotest.test_case "cwnd trace recorded" `Quick sender_cwnd_trace_records;
        Alcotest.test_case "cwnd trace off by default" `Quick sender_cwnd_trace_off_by_default;
        Alcotest.test_case "ece halves once per rtt" `Quick sender_ece_halves_once_per_rtt;
        Alcotest.test_case "rfc2861 validation" `Quick sender_cwnd_validation_blocks_idle_growth;
        Alcotest.test_case "rfc3042 limited transmit" `Quick
          sender_limited_transmit_releases_segments;
        Alcotest.test_case "pacing spreads the window" `Quick sender_pacing_spreads_window;
        Alcotest.test_case "paced transfer completes" `Quick loop_pacing_transfer_completes;
        Alcotest.test_case "ece on dup ack" `Quick sender_non_ecn_ignores_ece;
      ] );
    ( "transport.receiver",
      [
        Alcotest.test_case "in-order delivery" `Quick receiver_in_order;
        Alcotest.test_case "out-of-order dup acks" `Quick receiver_out_of_order_dup_acks;
        Alcotest.test_case "duplicate data re-acked" `Quick receiver_duplicate_data;
        Alcotest.test_case "delayed ack every second segment" `Quick
          receiver_delayed_ack_every_second;
        Alcotest.test_case "delayed ack 200ms timer" `Quick receiver_delayed_ack_timer;
        Alcotest.test_case "out-of-order acked immediately" `Quick
          receiver_delayed_ack_ooo_immediate;
        Alcotest.test_case "ce echoed as ece once" `Quick receiver_echoes_ce_as_ece;
      ] );
    ( "transport.loop",
      [
        Alcotest.test_case "lossless bulk transfer" `Quick loop_lossless_transfer;
        Alcotest.test_case "single loss -> fast retransmit" `Quick
          loop_single_loss_fast_retransmit;
        Alcotest.test_case "tail loss -> timeout" `Quick loop_loss_of_last_segment_needs_timeout;
        Alcotest.test_case "reno survives 5% random loss" `Slow loop_reno_random_loss;
        Alcotest.test_case "newreno survives 10% random loss" `Slow loop_newreno_random_loss;
        Alcotest.test_case "tahoe survives 5% random loss" `Slow loop_tahoe_random_loss;
        Alcotest.test_case "vegas survives 5% random loss" `Slow loop_vegas_random_loss;
        Alcotest.test_case "30% loss still completes" `Slow loop_heavy_loss_still_completes;
      ] );
    ( "transport.sack",
      [
        Alcotest.test_case "receiver reports blocks" `Quick receiver_sack_blocks;
        Alcotest.test_case "no blocks when disabled" `Quick
          receiver_no_sack_blocks_when_disabled;
        Alcotest.test_case "multi-loss recovery without timeout" `Quick
          sack_recovers_multiple_losses_without_timeout;
        Alcotest.test_case "reno contrast case" `Quick reno_same_losses_needs_timeout;
        Alcotest.test_case "random loss completeness" `Slow sack_random_loss_completes;
      ] );
    ( "transport.group",
      [
        Alcotest.test_case "attach/detach accounting" `Quick
          group_attach_detach_accounting;
        Alcotest.test_case "detached flow raises" `Quick group_detached_flow_raises;
        Alcotest.test_case "detach cancels timers" `Quick group_detach_cancels_timers;
        Alcotest.test_case "recycled row starts fresh" `Quick group_recycled_row_is_fresh;
        Alcotest.test_case "seq beyond reassembly window" `Quick
          receiver_rejects_seq_beyond_window;
      ] );
    ( "transport.udp",
      [
        Alcotest.test_case "immediate transmission" `Quick udp_immediate_transmission;
        Alcotest.test_case "ignores tcp packets" `Quick udp_ignores_tcp;
      ] );
  ]
