(* Tests for the network layer: units, packets, queues, links, routing,
   monitors. *)

open Netsim
module Time = Sim_engine.Time
module Scheduler = Sim_engine.Scheduler
module Rng = Sim_engine.Rng

let check_float = Alcotest.(check (float 1e-9))

let mk_packet ?(flow = 0) ?(src = 1) ?(dst = 0) ?(size = 1000) ?(seq = 0) factory =
  Packet.make factory ~flow ~src ~dst ~size_bytes:size ~sent_at:Time.zero
    (Packet.Tcp_data { seq; is_retransmit = false })

(* ------------------------------------------------------------------ *)
(* Units *)

let units_transmission_time () =
  (* 1000 bytes at 1 Mbps = 8 ms *)
  let bw = Units.mbps 1. in
  check_float "tx time" 0.008 (Time.to_sec (Units.transmission_time bw ~bytes:1000));
  check_float "bytes/s" 125000. (Units.bytes_per_sec bw);
  check_float "kbps" 5000. (Units.to_bps (Units.kbps 5.));
  check_float "gbps" 2e9 (Units.to_bps (Units.gbps 2.))

let units_invalid () =
  Alcotest.check_raises "zero" (Invalid_argument "Units.bps: non-positive") (fun () ->
      ignore (Units.bps 0.))

(* ------------------------------------------------------------------ *)
(* Packet *)

let packet_uids_unique () =
  let f = Packet.factory () in
  let a = mk_packet f and b = mk_packet f in
  Alcotest.(check bool) "distinct uids" true (a.Packet.uid <> b.Packet.uid)

let packet_classifiers () =
  let f = Packet.factory () in
  let data = mk_packet ~seq:7 f in
  let ack =
    Packet.make f ~flow:0 ~src:0 ~dst:1 ~size_bytes:40 ~sent_at:Time.zero
      (Packet.Tcp_ack { ack = 3; ece = false; sack = [] })
  in
  let udp =
    Packet.make f ~flow:0 ~src:1 ~dst:0 ~size_bytes:100 ~sent_at:Time.zero
      (Packet.Udp_data { seq = 9 })
  in
  Alcotest.(check bool) "data is data" true (Packet.is_data data);
  Alcotest.(check bool) "ack not data" false (Packet.is_data ack);
  Alcotest.(check bool) "udp is data" true (Packet.is_data udp);
  Alcotest.(check (option int)) "seq data" (Some 7) (Packet.seq data);
  Alcotest.(check (option int)) "seq ack" None (Packet.seq ack);
  Alcotest.(check (option int)) "seq udp" (Some 9) (Packet.seq udp);
  Alcotest.(check bool) "not rtx" false (Packet.is_retransmit data)

(* ------------------------------------------------------------------ *)
(* Droptail *)

let droptail_capacity () =
  let f = Packet.factory () in
  let q = Droptail.create ~capacity:2 in
  Alcotest.(check bool) "first" true (Droptail.enqueue q (mk_packet f) = `Enqueued);
  Alcotest.(check bool) "second" true (Droptail.enqueue q (mk_packet f) = `Enqueued);
  Alcotest.(check bool) "third dropped" true (Droptail.enqueue q (mk_packet f) = `Dropped);
  Alcotest.(check int) "length" 2 (Droptail.length q);
  ignore (Droptail.dequeue q);
  Alcotest.(check bool) "room again" true (Droptail.enqueue q (mk_packet f) = `Enqueued)

let droptail_high_water_mark () =
  let f = Packet.factory () in
  let q = Droptail.create ~capacity:5 in
  Alcotest.(check int) "starts at 0" 0 (Droptail.high_water_mark q);
  List.iter (fun _ -> ignore (Droptail.enqueue q (mk_packet f))) [ 1; 2; 3 ];
  ignore (Droptail.dequeue q);
  ignore (Droptail.dequeue q);
  Alcotest.(check int) "peak survives dequeues" 3 (Droptail.high_water_mark q);
  ignore (Droptail.enqueue q (mk_packet f));
  Alcotest.(check int) "below peak: unchanged" 3 (Droptail.high_water_mark q);
  (* The dispatching wrapper reports the same number. *)
  let qd = Queue_disc.droptail ~capacity:2 in
  ignore (Queue_disc.enqueue qd ~now:Time.zero (mk_packet f));
  Alcotest.(check int) "queue_disc dispatch" 1 (Queue_disc.high_water_mark qd)

let droptail_fifo_order () =
  let f = Packet.factory () in
  let q = Droptail.create ~capacity:10 in
  let ps = List.init 5 (fun i -> mk_packet ~seq:i f) in
  List.iter (fun p -> ignore (Droptail.enqueue q p)) ps;
  let out = List.init 5 (fun _ -> Option.get (Droptail.dequeue q)) in
  Alcotest.(check (list (option int)))
    "fifo"
    (List.map Packet.seq ps)
    (List.map Packet.seq out);
  Alcotest.(check bool) "drained" true (Droptail.dequeue q = None)

(* ------------------------------------------------------------------ *)
(* RED *)

let red_params capacity =
  {
    Red.min_th = 5.;
    max_th = 15.;
    max_p = 0.1;
    w_q = 0.5;
    (* fast-moving average so tests converge quickly *)
    capacity;
    idle_packet_time = 0.001;
    ecn_mark = false;
    adaptive = false;
  }

let red_no_drops_below_min_th () =
  let f = Packet.factory () in
  let rng = Rng.create ~seed:1L in
  let q = Red.create ~rng (red_params 100) in
  for i = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "enqueue %d" i)
      true
      (Red.enqueue q ~now:Time.zero (mk_packet f) = `Enqueued)
  done;
  Alcotest.(check int) "queued" 4 (Red.length q)

let red_always_drops_above_max_th () =
  let f = Packet.factory () in
  let rng = Rng.create ~seed:2L in
  let q = Red.create ~rng (red_params 100) in
  (* Fill to 40 without dequeue: average chases instantaneous with w_q=0.5,
     so it passes max_th = 15 well before 40. *)
  let results = List.init 40 (fun _ -> Red.enqueue q ~now:Time.zero (mk_packet f)) in
  Alcotest.(check bool) "avg above max_th" true (Red.avg q > 15.);
  let last = List.nth results 39 in
  Alcotest.(check bool) "forced drop" true (last = `Dropped)

let red_physical_capacity () =
  let f = Packet.factory () in
  let rng = Rng.create ~seed:3L in
  (* min_th huge: RED never early-drops, only physical overflow. *)
  let q =
    Red.create ~rng
      { (red_params 3) with Red.min_th = 1000.; max_th = 2000.; w_q = 0.001 }
  in
  let r = List.init 5 (fun _ -> Red.enqueue q ~now:Time.zero (mk_packet f)) in
  Alcotest.(check int) "held 3" 3 (Red.length q);
  Alcotest.(check bool) "4th dropped" true (List.nth r 3 = `Dropped)

let red_early_drop_probabilistic () =
  let f = Packet.factory () in
  let rng = Rng.create ~seed:4L in
  let q = Red.create ~rng (red_params 1000) in
  (* Hold the queue between thresholds and count early drops. *)
  let drops = ref 0 and total = 5000 in
  for _ = 1 to total do
    (match Red.enqueue q ~now:Time.zero (mk_packet f) with
    | `Dropped -> incr drops
    | `Enqueued -> ());
    (* keep instantaneous length near 10 (between 5 and 15) *)
    while Red.length q > 10 do
      ignore (Red.dequeue q ~now:Time.zero)
    done
  done;
  let rate = float_of_int !drops /. float_of_int total in
  Alcotest.(check bool)
    (Printf.sprintf "early-drop rate %.3f in (0, 0.3)" rate)
    true
    (rate > 0.005 && rate < 0.3)

let red_average_decays_when_idle () =
  let f = Packet.factory () in
  let rng = Rng.create ~seed:5L in
  let q = Red.create ~rng (red_params 100) in
  for _ = 1 to 10 do
    ignore (Red.enqueue q ~now:Time.zero (mk_packet f))
  done;
  let avg_busy = Red.avg q in
  while Red.length q > 0 do
    ignore (Red.dequeue q ~now:(Time.of_sec 1.))
  done;
  ignore (Red.enqueue q ~now:(Time.of_sec 10.) (mk_packet f));
  Alcotest.(check bool) "decayed" true (Red.avg q < avg_busy /. 2.)

let mk_ecn_packet f =
  Packet.make f ~ecn_capable:true ~flow:0 ~src:1 ~dst:0 ~size_bytes:1000
    ~sent_at:Time.zero
    (Packet.Tcp_data { seq = 0; is_retransmit = false })

let red_marks_instead_of_dropping () =
  let f = Packet.factory () in
  let rng = Rng.create ~seed:7L in
  (* max_p = 1 in the marking band: every arrival between thresholds gets
     an early "drop", which for capable packets becomes a CE mark. *)
  let q =
    Red.create ~rng { (red_params 1000) with Red.max_p = 1.; ecn_mark = true }
  in
  (* Push the average between min_th (5) and max_th (15). *)
  let enqueued = ref 0 and dropped = ref 0 in
  for _ = 1 to 200 do
    (match Red.enqueue q ~now:Time.zero (mk_ecn_packet f) with
    | `Enqueued -> incr enqueued
    | `Dropped -> incr dropped);
    while Red.length q > 10 do
      ignore (Red.dequeue q ~now:Time.zero)
    done
  done;
  Alcotest.(check bool) "marks happened" true (Red.marks q > 0);
  Alcotest.(check int) "no early drops of capable packets" 0 !dropped

let red_drops_non_capable_despite_ecn_mode () =
  let f = Packet.factory () in
  let rng = Rng.create ~seed:8L in
  let q =
    Red.create ~rng { (red_params 1000) with Red.max_p = 1.; ecn_mark = true }
  in
  let dropped = ref 0 in
  for _ = 1 to 200 do
    (match Red.enqueue q ~now:Time.zero (mk_packet f) with
    | `Dropped -> incr dropped
    | `Enqueued -> ());
    while Red.length q > 10 do
      ignore (Red.dequeue q ~now:Time.zero)
    done
  done;
  Alcotest.(check bool) "non-capable still dropped" true (!dropped > 0);
  Alcotest.(check int) "no marks" 0 (Red.marks q)

let red_adaptive_max_p_moves () =
  let f = Packet.factory () in
  let rng = Rng.create ~seed:9L in
  let q = Red.create ~rng { (red_params 1000) with Red.adaptive = true } in
  let initial = Red.current_max_p q in
  (* Sustained congestion above max_th: max_p scales up (one step per 0.5 s). *)
  let now = ref 0.0 in
  for _ = 1 to 100 do
    now := !now +. 0.1;
    ignore (Red.enqueue q ~now:(Time.of_sec !now) (mk_packet f))
  done;
  Alcotest.(check bool) "scaled up under congestion" true
    (Red.current_max_p q > initial);
  (* Long quiet period with an empty queue: max_p scales back down. *)
  while Red.length q > 0 do
    ignore (Red.dequeue q ~now:(Time.of_sec !now))
  done;
  let high = Red.current_max_p q in
  for _ = 1 to 100 do
    now := !now +. 1.0;
    ignore (Red.enqueue q ~now:(Time.of_sec !now) (mk_packet f));
    ignore (Red.dequeue q ~now:(Time.of_sec !now))
  done;
  Alcotest.(check bool) "scaled down when idle" true (Red.current_max_p q < high)

let red_validates_params () =
  let rng = Rng.create ~seed:6L in
  Alcotest.check_raises "thresholds" (Invalid_argument "Red.create: bad thresholds")
    (fun () -> ignore (Red.create ~rng { (red_params 10) with Red.max_th = 1. }))

(* ------------------------------------------------------------------ *)
(* SFQ *)

let sfq_round_robin_service () =
  let f = Packet.factory () in
  let q = Sfq.create ~buckets:4 ~capacity:100 () in
  (* Find two flows in different buckets. *)
  let flow_a = 0 in
  let flow_b =
    let rec find fl =
      if Sfq.bucket_of_flow q fl <> Sfq.bucket_of_flow q flow_a then fl else find (fl + 1)
    in
    find 1
  in
  (* 3 packets of A then 3 of B: round-robin interleaves the service. *)
  List.iter (fun _ -> ignore (Sfq.enqueue q (mk_packet ~flow:flow_a f))) [ 1; 2; 3 ];
  List.iter (fun _ -> ignore (Sfq.enqueue q (mk_packet ~flow:flow_b f))) [ 1; 2; 3 ];
  let order = List.init 6 (fun _ -> (Option.get (Sfq.dequeue q)).Packet.flow) in
  let rec alternates = function
    | a :: b :: rest -> a <> b && alternates (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool)
    (Printf.sprintf "interleaved service %s"
       (String.concat "," (List.map string_of_int order)))
    true (alternates order)

let sfq_overflow_penalizes_longest () =
  let f = Packet.factory () in
  let q = Sfq.create ~buckets:4 ~capacity:4 () in
  let flow_a = 0 in
  let flow_b =
    let rec find fl =
      if Sfq.bucket_of_flow q fl <> Sfq.bucket_of_flow q flow_a then fl else find (fl + 1)
    in
    find 1
  in
  (* Fill the whole buffer with the hog A. *)
  List.iter (fun _ -> ignore (Sfq.enqueue q (mk_packet ~flow:flow_a f))) [ 1; 2; 3; 4 ];
  (* B's arrival evicts one of A's packets rather than being dropped. *)
  (match Sfq.enqueue q (mk_packet ~flow:flow_b f) with
  | `Enqueued_dropping victim ->
      Alcotest.(check int) "victim from hog" flow_a victim.Packet.flow
  | `Enqueued | `Dropped -> Alcotest.fail "expected eviction");
  (* A's own arrival at a full buffer with A longest is refused. *)
  (match Sfq.enqueue q (mk_packet ~flow:flow_a f) with
  | `Dropped -> ()
  | `Enqueued | `Enqueued_dropping _ -> Alcotest.fail "expected drop of the hog");
  Alcotest.(check int) "capacity held" 4 (Sfq.length q)

let sfq_single_flow_fifo () =
  let f = Packet.factory () in
  let q = Sfq.create ~capacity:10 () in
  List.iter (fun i -> ignore (Sfq.enqueue q (mk_packet ~seq:i f))) [ 0; 1; 2 ];
  let seqs = List.init 3 (fun _ -> Packet.seq (Option.get (Sfq.dequeue q))) in
  Alcotest.(check (list (option int))) "fifo within flow"
    [ Some 0; Some 1; Some 2 ] seqs;
  Alcotest.(check bool) "drained" true (Sfq.dequeue q = None)

(* ------------------------------------------------------------------ *)
(* Link *)

let link_delivery_timing () =
  let sched = Scheduler.create () in
  let f = Packet.factory () in
  let delivered = ref [] in
  let link =
    Link.create sched ~name:"l" ~bandwidth:(Units.mbps 1.) ~delay:(Time.of_ms 10.)
      ~queue:(Queue_disc.droptail ~capacity:100)
      ~deliver:(fun p ->
        delivered := (Time.to_sec (Scheduler.now sched), p) :: !delivered)
  in
  (* 1000 B at 1 Mbps = 8 ms serialize + 10 ms propagate = 18 ms. *)
  Link.send link (mk_packet ~size:1000 f);
  Scheduler.run sched;
  match !delivered with
  | [ (at, _) ] -> check_float "arrival time" 0.018 at
  | _ -> Alcotest.fail "expected exactly one delivery"

let link_pipelining () =
  (* Two packets: serialization is sequential (8ms each), propagation
     overlaps: arrivals at 18 ms and 26 ms. *)
  let sched = Scheduler.create () in
  let f = Packet.factory () in
  let times = ref [] in
  let link =
    Link.create sched ~name:"l" ~bandwidth:(Units.mbps 1.) ~delay:(Time.of_ms 10.)
      ~queue:(Queue_disc.droptail ~capacity:100)
      ~deliver:(fun _ -> times := Time.to_sec (Scheduler.now sched) :: !times)
  in
  Link.send link (mk_packet ~size:1000 f);
  Link.send link (mk_packet ~size:1000 f);
  Scheduler.run sched;
  Alcotest.(check (list (float 1e-9))) "pipelined" [ 0.018; 0.026 ] (List.rev !times)

let link_preserves_order () =
  let sched = Scheduler.create () in
  let f = Packet.factory () in
  let seqs = ref [] in
  let link =
    Link.create sched ~name:"l" ~bandwidth:(Units.mbps 10.) ~delay:(Time.of_ms 1.)
      ~queue:(Queue_disc.droptail ~capacity:100)
      ~deliver:(fun p -> seqs := Option.get (Packet.seq p) :: !seqs)
  in
  List.iter (fun i -> Link.send link (mk_packet ~seq:i f)) [ 0; 1; 2; 3; 4 ];
  Scheduler.run sched;
  Alcotest.(check (list int)) "order" [ 0; 1; 2; 3; 4 ] (List.rev !seqs)

let link_drops_and_counters () =
  let sched = Scheduler.create () in
  let f = Packet.factory () in
  let link =
    Link.create sched ~name:"l" ~bandwidth:(Units.kbps 1.) (* very slow *)
      ~delay:(Time.of_ms 1.)
      ~queue:(Queue_disc.droptail ~capacity:2)
      ~deliver:ignore
  in
  let drops = ref 0 in
  Link.on_drop link (fun _ _ -> incr drops);
  (* First starts transmitting immediately (leaves queue), next two queue,
     remaining two drop. *)
  List.iter (fun i -> Link.send link (mk_packet ~seq:i f)) [ 0; 1; 2; 3; 4 ];
  Alcotest.(check int) "arrivals" 5 (Link.arrivals link);
  Alcotest.(check int) "drops" 2 (Link.drops link);
  Alcotest.(check int) "listener drops" 2 !drops;
  Scheduler.run sched;
  Alcotest.(check int) "departures" 3 (Link.departures link);
  Alcotest.(check int) "bytes" 3000 (Link.bytes_delivered link)

let link_listeners_fire () =
  let sched = Scheduler.create () in
  let f = Packet.factory () in
  let link =
    Link.create sched ~name:"l" ~bandwidth:(Units.mbps 1.) ~delay:(Time.of_ms 1.)
      ~queue:(Queue_disc.droptail ~capacity:10)
      ~deliver:ignore
  in
  let arrivals = ref 0 and departs = ref 0 in
  Link.on_arrival link (fun _ _ -> incr arrivals);
  Link.on_depart link (fun _ _ -> incr departs);
  Link.send link (mk_packet f);
  Scheduler.run sched;
  Alcotest.(check int) "arrival listener" 1 !arrivals;
  Alcotest.(check int) "depart listener" 1 !departs

(* ------------------------------------------------------------------ *)
(* Router *)

let router_routes_by_destination () =
  let sched = Scheduler.create () in
  let f = Packet.factory () in
  let to_a = ref 0 and to_b = ref 0 in
  let mk_link deliver =
    Link.create sched ~name:"x" ~bandwidth:(Units.mbps 10.) ~delay:(Time.of_ms 1.)
      ~queue:(Queue_disc.droptail ~capacity:10)
      ~deliver
  in
  let la = mk_link (fun _ -> incr to_a) and lb = mk_link (fun _ -> incr to_b) in
  let r = Router.create ~name:"gw" in
  Router.add_route r ~dst:1 la;
  Router.set_default r lb;
  Router.receive r (mk_packet ~dst:1 f);
  Router.receive r (mk_packet ~dst:9 f);
  Router.receive r (mk_packet ~dst:1 f);
  Scheduler.run sched;
  Alcotest.(check int) "to a" 2 !to_a;
  Alcotest.(check int) "to b (default)" 1 !to_b;
  Alcotest.(check int) "forwarded" 3 (Router.forwarded r)

let router_no_route_fails () =
  let f = Packet.factory () in
  let r = Router.create ~name:"gw" in
  Alcotest.check_raises "no route" (Failure "Router gw: no route for destination 5")
    (fun () -> Router.receive r (mk_packet ~dst:5 f))

let router_duplicate_route_rejected () =
  let sched = Scheduler.create () in
  let l =
    Link.create sched ~name:"x" ~bandwidth:(Units.mbps 1.) ~delay:(Time.of_ms 1.)
      ~queue:(Queue_disc.droptail ~capacity:1)
      ~deliver:ignore
  in
  let r = Router.create ~name:"gw" in
  Router.add_route r ~dst:1 l;
  Alcotest.check_raises "dup"
    (Invalid_argument "Router.add_route(gw): duplicate route for 1") (fun () ->
      Router.add_route r ~dst:1 l)

(* ------------------------------------------------------------------ *)
(* Node and Monitor *)

let node_handler_dispatch () =
  let f = Packet.factory () in
  let n = Node.create ~id:3 in
  let got = ref None in
  Node.set_handler n (fun p -> got := Some p);
  let p = mk_packet ~dst:3 f in
  Node.receive n p;
  Alcotest.(check int) "received count" 1 (Node.received n);
  Alcotest.(check bool) "handler saw packet" true (!got = Some p)

let monitor_arrival_binner_counts_data_only () =
  let sched = Scheduler.create () in
  let f = Packet.factory () in
  let link =
    Link.create sched ~name:"l" ~bandwidth:(Units.mbps 10.) ~delay:(Time.of_ms 1.)
      ~queue:(Queue_disc.droptail ~capacity:100)
      ~deliver:ignore
  in
  let binned = Monitor.arrival_binner link ~origin:0. ~width:1. in
  Link.send link (mk_packet f);
  Link.send link
    (Packet.make f ~flow:0 ~src:0 ~dst:1 ~size_bytes:40 ~sent_at:Time.zero
       (Packet.Tcp_ack { ack = 0; ece = false; sack = [] }));
  Scheduler.run sched;
  Alcotest.(check int) "counts only data" 1 (Netstats.Binned.total binned)

let monitor_drop_runs () =
  let sched = Scheduler.create () in
  let f = Packet.factory () in
  let link =
    Link.create sched ~name:"l" ~bandwidth:(Units.kbps 1.) (* glacial *)
      ~delay:(Time.of_ms 1.)
      ~queue:(Queue_disc.droptail ~capacity:2)
      ~deliver:ignore
  in
  let runs = Monitor.drop_run_recorder link in
  (* 1 transmits, 2 queue, then: drop drop, accept (after dequeue), drop. *)
  List.iter (fun i -> Link.send link (mk_packet ~seq:i f)) [ 0; 1; 2 ];
  Link.send link (mk_packet ~seq:3 f);
  Link.send link (mk_packet ~seq:4 f);
  (* free one slot, then one acceptance breaks the run, then another drop *)
  Scheduler.run ~until:(Time.of_sec 9.) sched;
  Link.send link (mk_packet ~seq:5 f);
  Link.send link (mk_packet ~seq:6 f);
  Alcotest.(check (list int)) "runs" [ 2; 1 ] (runs ())

let monitor_queue_sampler () =
  let sched = Scheduler.create () in
  let f = Packet.factory () in
  let link =
    Link.create sched ~name:"l" ~bandwidth:(Units.kbps 8.) (* 1 s per 1000 B *)
      ~delay:(Time.of_ms 1.)
      ~queue:(Queue_disc.droptail ~capacity:100)
      ~deliver:ignore
  in
  let series =
    Monitor.queue_sampler sched link ~every:(Time.of_sec 0.25) ~until:(Time.of_sec 2.)
  in
  (* Three packets: one transmitting, two queued initially. *)
  List.iter (fun _ -> Link.send link (mk_packet ~size:1000 f)) [ 1; 2; 3 ];
  Scheduler.run sched;
  let values = Netstats.Series.values series in
  Alcotest.(check bool) "saw queue of 2" true (Array.exists (fun v -> v = 2.) values);
  Alcotest.(check bool) "saw empty queue" true (Array.exists (fun v -> v = 0.) values)

(* ------------------------------------------------------------------ *)
(* Tracer *)

let tracer_records_lifecycle () =
  let sched = Scheduler.create () in
  let f = Packet.factory () in
  let tracer = Tracer.create () in
  let link =
    Link.create sched ~name:"lnk" ~bandwidth:(Units.kbps 8.) (* 1 s per 1000 B *)
      ~delay:(Time.of_ms 1.)
      ~queue:(Queue_disc.droptail ~capacity:1)
      ~deliver:ignore
  in
  Tracer.attach tracer link;
  (* First transmits, second queues, third drops. *)
  List.iter (fun i -> Link.send link (mk_packet ~flow:i ~seq:i f)) [ 0; 1; 2 ];
  Scheduler.run sched;
  let evs = Tracer.events tracer in
  let kinds = Array.to_list (Array.map (fun e -> e.Tracer.kind) evs) in
  Alcotest.(check int) "6 events" 6 (List.length kinds);
  Alcotest.(check int) "3 arrivals" 3
    (List.length (List.filter (( = ) Tracer.Arrive) kinds));
  Alcotest.(check int) "1 drop" 1 (List.length (List.filter (( = ) Tracer.Drop) kinds));
  Alcotest.(check int) "2 deliveries" 2
    (List.length (List.filter (( = ) Tracer.Deliver) kinds));
  (* Drops are attributed to the right flow. *)
  Alcotest.(check int) "flow 2 dropped" 1 (List.length (Tracer.drops_of_flow tracer 2));
  Alcotest.(check int) "flow 0 clean" 0 (List.length (Tracer.drops_of_flow tracer 0))

let tracer_per_flow_and_bytes () =
  let sched = Scheduler.create () in
  let f = Packet.factory () in
  let tracer = Tracer.create () in
  let link =
    Link.create sched ~name:"lnk" ~bandwidth:(Units.mbps 10.) ~delay:(Time.of_ms 1.)
      ~queue:(Queue_disc.droptail ~capacity:100)
      ~deliver:ignore
  in
  Tracer.attach tracer link;
  List.iter (fun fl -> Link.send link (mk_packet ~flow:fl f)) [ 0; 0; 1 ];
  Scheduler.run sched;
  let arrivals = Tracer.per_flow_counts tracer Tracer.Arrive in
  Alcotest.(check (option int)) "flow 0 twice" (Some 2) (Hashtbl.find_opt arrivals 0);
  Alcotest.(check (option int)) "flow 1 once" (Some 1) (Hashtbl.find_opt arrivals 1);
  let bytes = Tracer.delivered_bytes_between tracer ~link:"lnk" 0. 10. in
  Alcotest.(check int) "all bytes delivered" 3000 bytes

let tracer_text_format () =
  let sched = Scheduler.create () in
  let f = Packet.factory () in
  let tracer = Tracer.create () in
  let link =
    Link.create sched ~name:"bottleneck" ~bandwidth:(Units.mbps 10.)
      ~delay:(Time.of_ms 1.)
      ~queue:(Queue_disc.droptail ~capacity:10)
      ~deliver:ignore
  in
  Tracer.attach tracer link;
  Link.send link (mk_packet ~flow:7 ~seq:42 f);
  Scheduler.run sched;
  let line = Format.asprintf "%a" Tracer.pp_event (Tracer.events tracer).(0) in
  Alcotest.(check bool) "has link name" true (Astring_like.contains line "bottleneck");
  Alcotest.(check bool) "has flow" true (Astring_like.contains line "flow=7");
  Alcotest.(check bool) "has seq" true (Astring_like.contains line "seq=42");
  Alcotest.(check bool) "arrive marker" true (String.length line > 0 && line.[0] = '+')

let tracer_attach_bus_matches_attach () =
  (* Two identical links: one watched directly, one through the bus. The
     tracer must record the same trace either way. *)
  let record via =
    let sched = Scheduler.create () in
    let f = Packet.factory () in
    let tracer = Tracer.create () in
    let link =
      Link.create sched ~name:"lnk" ~bandwidth:(Units.kbps 8.) ~delay:(Time.of_ms 1.)
        ~queue:(Queue_disc.droptail ~capacity:1)
        ~deliver:ignore
    in
    via tracer link;
    List.iter (fun i -> Link.send link (mk_packet ~flow:i ~seq:i f)) [ 0; 1; 2 ];
    Scheduler.run sched;
    Array.to_list
      (Array.map
         (fun e -> (e.Tracer.kind, e.Tracer.flow, e.Tracer.seq, e.Tracer.time))
         (Tracer.events tracer))
  in
  let direct = record Tracer.attach in
  let bused =
    record (fun tracer link ->
        let bus = Telemetry.Event_bus.create () in
        Tracer.attach_bus tracer bus;
        Link.publish link bus;
        (* Non-packet traffic on the bus is ignored by the tracer. *)
        Telemetry.Event_bus.publish bus
          (Telemetry.Event_bus.Tcp
             { time = 0.; kind = Telemetry.Event_bus.Timeout; flow = 0; cwnd = 1. }))
  in
  Alcotest.(check int) "same event count" (List.length direct) (List.length bused);
  Alcotest.(check bool) "identical traces" true (direct = bused)

let link_queue_high_water_mark () =
  let sched = Scheduler.create () in
  let f = Packet.factory () in
  let link =
    Link.create sched ~name:"l" ~bandwidth:(Units.kbps 8.) (* 1 s per 1000 B *)
      ~delay:(Time.of_ms 1.)
      ~queue:(Queue_disc.droptail ~capacity:10)
      ~deliver:ignore
  in
  (* One transmits immediately; the other three peak the queue at 3. *)
  List.iter (fun _ -> Link.send link (mk_packet f)) [ 1; 2; 3; 4 ];
  Scheduler.run sched;
  Alcotest.(check int) "drained" 0 (Link.queue_length link);
  Alcotest.(check int) "peak was 3" 3 (Link.queue_high_water_mark link)

(* ------------------------------------------------------------------ *)
(* Properties *)

let sfq_conservation_property =
  QCheck.Test.make ~name:"sfq conserves packets" ~count:100
    QCheck.(pair (int_bound 50) (small_list (pair (int_bound 7) bool)))
    (fun (cap, ops) ->
      QCheck.assume (cap >= 1);
      let f = Packet.factory () in
      let q = Sfq.create ~buckets:4 ~capacity:cap () in
      let enqueued = ref 0 and evicted = ref 0 and dequeued = ref 0 in
      List.iter
        (fun (flow, push) ->
          if push then
            match Sfq.enqueue q (mk_packet ~flow f) with
            | `Enqueued -> incr enqueued
            | `Dropped -> ()
            | `Enqueued_dropping _ ->
                incr enqueued;
                incr evicted
          else
            match Sfq.dequeue q with Some _ -> incr dequeued | None -> ())
        ops;
      Sfq.length q = !enqueued - !evicted - !dequeued && Sfq.length q <= cap)

let red_capacity_property =
  QCheck.Test.make ~name:"red never exceeds capacity" ~count:100
    QCheck.(pair (int_range 1 20) (small_list bool))
    (fun (cap, ops) ->
      let f = Packet.factory () in
      let rng = Rng.create ~seed:77L in
      let q = Red.create ~rng (red_params cap) in
      List.for_all
        (fun push ->
          if push then begin
            ignore (Red.enqueue q ~now:Time.zero (mk_packet f));
            Red.length q <= cap
          end
          else begin
            ignore (Red.dequeue q ~now:Time.zero);
            true
          end)
        ops)

let suite =
  [
    ( "net.units",
      [
        Alcotest.test_case "transmission time" `Quick units_transmission_time;
        Alcotest.test_case "invalid bandwidth" `Quick units_invalid;
      ] );
    ( "net.packet",
      [
        Alcotest.test_case "unique uids" `Quick packet_uids_unique;
        Alcotest.test_case "classifiers" `Quick packet_classifiers;
      ] );
    ( "net.droptail",
      [
        Alcotest.test_case "capacity" `Quick droptail_capacity;
        Alcotest.test_case "high-water mark" `Quick droptail_high_water_mark;
        Alcotest.test_case "fifo order" `Quick droptail_fifo_order;
      ] );
    ( "net.red",
      [
        Alcotest.test_case "no drops below min_th" `Quick red_no_drops_below_min_th;
        Alcotest.test_case "forced drops above max_th" `Quick red_always_drops_above_max_th;
        Alcotest.test_case "physical capacity" `Quick red_physical_capacity;
        Alcotest.test_case "probabilistic early drop" `Quick red_early_drop_probabilistic;
        Alcotest.test_case "average decays when idle" `Quick red_average_decays_when_idle;
        Alcotest.test_case "ecn marks instead of dropping" `Quick red_marks_instead_of_dropping;
        Alcotest.test_case "non-capable packets still drop" `Quick
          red_drops_non_capable_despite_ecn_mode;
        Alcotest.test_case "adaptive max_p tracks load" `Quick red_adaptive_max_p_moves;
        Alcotest.test_case "validates parameters" `Quick red_validates_params;
      ] );
    ( "net.sfq",
      [
        Alcotest.test_case "round-robin service" `Quick sfq_round_robin_service;
        Alcotest.test_case "overflow penalizes longest" `Quick sfq_overflow_penalizes_longest;
        Alcotest.test_case "single flow is fifo" `Quick sfq_single_flow_fifo;
      ] );
    ( "net.link",
      [
        Alcotest.test_case "serialization + propagation" `Quick link_delivery_timing;
        Alcotest.test_case "pipelining" `Quick link_pipelining;
        Alcotest.test_case "order preservation" `Quick link_preserves_order;
        Alcotest.test_case "drops and counters" `Quick link_drops_and_counters;
        Alcotest.test_case "listeners" `Quick link_listeners_fire;
        Alcotest.test_case "queue high-water mark" `Quick link_queue_high_water_mark;
      ] );
    ( "net.router",
      [
        Alcotest.test_case "routes by destination" `Quick router_routes_by_destination;
        Alcotest.test_case "missing route fails" `Quick router_no_route_fails;
        Alcotest.test_case "duplicate route rejected" `Quick router_duplicate_route_rejected;
      ] );
    ( "net.node",
      [ Alcotest.test_case "handler dispatch" `Quick node_handler_dispatch ] );
    ( "net.tracer",
      [
        Alcotest.test_case "records packet lifecycle" `Quick tracer_records_lifecycle;
        Alcotest.test_case "per-flow counts and bytes" `Quick tracer_per_flow_and_bytes;
        Alcotest.test_case "text format" `Quick tracer_text_format;
        Alcotest.test_case "bus attachment matches direct" `Quick
          tracer_attach_bus_matches_attach;
      ] );
    ( "net.properties",
      [
        QCheck_alcotest.to_alcotest sfq_conservation_property;
        QCheck_alcotest.to_alcotest red_capacity_property;
      ] );
    ( "net.monitor",
      [
        Alcotest.test_case "arrival binner counts data" `Quick
          monitor_arrival_binner_counts_data_only;
        Alcotest.test_case "queue sampler" `Quick monitor_queue_sampler;
        Alcotest.test_case "drop runs" `Quick monitor_drop_runs;
      ] );
  ]
