(* Tests for the network layer: units, pooled packets, queues, links,
   routing, monitors. *)

open Netsim
module Time = Sim_engine.Time
module Scheduler = Sim_engine.Scheduler
module Rng = Sim_engine.Rng
module Pool = Packet_pool

let check_float = Alcotest.(check (float 1e-9))

let mk_packet ?(flow = 0) ?(src = 1) ?(dst = 0) ?(size = 1000) ?(seq = 0) pool =
  Pool.alloc_data pool ~flow ~src ~dst ~size_bytes:size ~sent_at:Time.zero ~seq
    ~is_retransmit:false ()

(* ------------------------------------------------------------------ *)
(* Units *)

let units_transmission_time () =
  (* 1000 bytes at 1 Mbps = 8 ms *)
  let bw = Units.mbps 1. in
  check_float "tx time" 0.008 (Time.to_sec (Units.transmission_time bw ~bytes:1000));
  check_float "bytes/s" 125000. (Units.bytes_per_sec bw);
  check_float "kbps" 5000. (Units.to_bps (Units.kbps 5.));
  check_float "gbps" 2e9 (Units.to_bps (Units.gbps 2.))

let units_invalid () =
  Alcotest.check_raises "zero" (Invalid_argument "Units.bps: non-positive") (fun () ->
      ignore (Units.bps 0.))

(* ------------------------------------------------------------------ *)
(* Packet pool *)

let pool_uids_unique () =
  let pool = Pool.create () in
  let a = mk_packet pool and b = mk_packet pool in
  Alcotest.(check bool) "distinct uids" true (Pool.uid pool a <> Pool.uid pool b)

let pool_classifiers () =
  let pool = Pool.create () in
  let data = mk_packet ~seq:7 pool in
  let ack =
    Pool.alloc_ack pool ~flow:0 ~src:0 ~dst:1 ~size_bytes:40 ~sent_at:Time.zero
      ~ack:3 ~ece:false ~sack:[] ()
  in
  let udp =
    Pool.alloc_udp pool ~flow:0 ~src:1 ~dst:0 ~size_bytes:100 ~sent_at:Time.zero
      ~seq:9 ()
  in
  Alcotest.(check bool) "data is data" true (Pool.is_data pool data);
  Alcotest.(check bool) "ack not data" false (Pool.is_data pool ack);
  Alcotest.(check bool) "udp is data" true (Pool.is_data pool udp);
  Alcotest.(check (option int)) "seq data" (Some 7) (Pool.seq_opt pool data);
  Alcotest.(check (option int)) "seq ack" None (Pool.seq_opt pool ack);
  Alcotest.(check (option int)) "seq udp" (Some 9) (Pool.seq_opt pool udp);
  Alcotest.(check int) "ack word" 3 (Pool.ack pool ack);
  Alcotest.(check bool) "not rtx" false (Pool.is_retransmit pool data)

let pool_stale_handle_raises () =
  let pool = Pool.create () in
  let h = mk_packet ~seq:11 pool in
  Alcotest.(check int) "live before free" 1 (Pool.live pool);
  Pool.free pool h;
  Alcotest.(check int) "live after free" 0 (Pool.live pool);
  (* Every accessor must reject the stale handle loudly. *)
  let expect_invalid label f =
    match f () with
    | _ -> Alcotest.failf "%s: stale handle accepted" label
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "flow" (fun () -> Pool.flow pool h);
  expect_invalid "seq" (fun () -> Pool.seq pool h);
  expect_invalid "size" (fun () -> Pool.size_bytes pool h);
  expect_invalid "kind" (fun () -> Pool.kind pool h);
  expect_invalid "double free" (fun () -> Pool.free pool h);
  expect_invalid "nil" (fun () -> Pool.flow pool Pool.nil)

let pool_recycled_slot_does_not_alias () =
  let pool = Pool.create () in
  let a = mk_packet ~flow:1 ~seq:100 pool in
  Pool.free pool a;
  (* The next allocation reuses a's slot (LIFO free list) but must get a
     fresh generation: the old handle stays dead, the new one reads the
     new packet's fields. *)
  let b = mk_packet ~flow:2 ~seq:200 pool in
  Alcotest.(check bool) "handles differ" true (a <> b);
  Alcotest.(check int) "new fields" 200 (Pool.seq pool b);
  Alcotest.(check int) "new flow" 2 (Pool.flow pool b);
  (match Pool.flow pool a with
  | _ -> Alcotest.fail "old handle reads recycled slot"
  | exception Invalid_argument _ -> ());
  Pool.free pool b;
  Alcotest.(check int) "drained" 0 (Pool.live pool)

let pool_accounting () =
  let pool = Pool.create ~capacity:2 () in
  let hs = List.init 5 (fun i -> mk_packet ~seq:i pool) in
  Alcotest.(check int) "live" 5 (Pool.live pool);
  Alcotest.(check int) "high water" 5 (Pool.high_water_mark pool);
  Alcotest.(check int) "allocated" 5 (Pool.allocated pool);
  List.iter (Pool.free pool) hs;
  Alcotest.(check int) "drained" 0 (Pool.live pool);
  ignore (mk_packet pool);
  Alcotest.(check int) "peak survives" 5 (Pool.high_water_mark pool);
  Alcotest.(check int) "allocated keeps counting" 6 (Pool.allocated pool)

let pool_sack_side_table () =
  let pool = Pool.create () in
  let blocks = [ (4, 6); (9, 12) ] in
  let h =
    Pool.alloc_ack pool ~flow:3 ~src:0 ~dst:1 ~size_bytes:40 ~sent_at:Time.zero
      ~ack:4 ~ece:true ~sack:blocks ()
  in
  Alcotest.(check bool) "ece" true (Pool.ece pool h);
  Alcotest.(check (list (pair int int))) "sack blocks" blocks (Pool.sack pool h);
  Pool.free pool h;
  (* Recycling the slot must not leak the old SACK list into a fresh ACK. *)
  let h2 =
    Pool.alloc_ack pool ~flow:3 ~src:0 ~dst:1 ~size_bytes:40 ~sent_at:Time.zero
      ~ack:5 ~ece:false ~sack:[] ()
  in
  Alcotest.(check (list (pair int int))) "fresh ack has no sack" [] (Pool.sack pool h2)

(* ------------------------------------------------------------------ *)
(* Droptail *)

let droptail_capacity () =
  let pool = Pool.create () in
  let q = Droptail.create ~capacity:2 in
  Alcotest.(check bool) "first" true (Droptail.enqueue q (mk_packet pool) = `Enqueued);
  Alcotest.(check bool) "second" true (Droptail.enqueue q (mk_packet pool) = `Enqueued);
  Alcotest.(check bool) "third dropped" true (Droptail.enqueue q (mk_packet pool) = `Dropped);
  Alcotest.(check int) "length" 2 (Droptail.length q);
  ignore (Droptail.dequeue q);
  Alcotest.(check bool) "room again" true (Droptail.enqueue q (mk_packet pool) = `Enqueued)

let droptail_high_water_mark () =
  let pool = Pool.create () in
  let q = Droptail.create ~capacity:5 in
  Alcotest.(check int) "starts at 0" 0 (Droptail.high_water_mark q);
  List.iter (fun _ -> ignore (Droptail.enqueue q (mk_packet pool))) [ 1; 2; 3 ];
  ignore (Droptail.dequeue q);
  ignore (Droptail.dequeue q);
  Alcotest.(check int) "peak survives dequeues" 3 (Droptail.high_water_mark q);
  ignore (Droptail.enqueue q (mk_packet pool));
  Alcotest.(check int) "below peak: unchanged" 3 (Droptail.high_water_mark q);
  (* The dispatching wrapper reports the same number. *)
  let qd = Queue_disc.droptail ~capacity:2 in
  ignore (Queue_disc.enqueue qd ~now:Time.zero (mk_packet pool));
  Alcotest.(check int) "queue_disc dispatch" 1 (Queue_disc.high_water_mark qd)

let droptail_fifo_order () =
  let pool = Pool.create () in
  let q = Droptail.create ~capacity:10 in
  let ps = List.init 5 (fun i -> mk_packet ~seq:i pool) in
  List.iter (fun p -> ignore (Droptail.enqueue q p)) ps;
  let out = List.init 5 (fun _ -> Droptail.dequeue q) in
  Alcotest.(check (list int))
    "fifo"
    (List.map (Pool.seq pool) ps)
    (List.map (Pool.seq pool) out);
  Alcotest.(check bool) "drained" true (Pool.is_nil (Droptail.dequeue q))

(* ------------------------------------------------------------------ *)
(* RED *)

let red_params capacity =
  {
    Red.min_th = 5.;
    max_th = 15.;
    max_p = 0.1;
    w_q = 0.5;
    (* fast-moving average so tests converge quickly *)
    capacity;
    idle_packet_time = 0.001;
    ecn_mark = false;
    adaptive = false;
  }

let red_no_drops_below_min_th () =
  let pool = Pool.create () in
  let rng = Rng.create ~seed:1L in
  let q = Red.create ~rng ~pool (red_params 100) in
  for i = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "enqueue %d" i)
      true
      (Red.enqueue q ~now:Time.zero (mk_packet pool) = `Enqueued)
  done;
  Alcotest.(check int) "queued" 4 (Red.length q)

let red_always_drops_above_max_th () =
  let pool = Pool.create () in
  let rng = Rng.create ~seed:2L in
  let q = Red.create ~rng ~pool (red_params 100) in
  (* Fill to 40 without dequeue: average chases instantaneous with w_q=0.5,
     so it passes max_th = 15 well before 40. *)
  let results = List.init 40 (fun _ -> Red.enqueue q ~now:Time.zero (mk_packet pool)) in
  Alcotest.(check bool) "avg above max_th" true (Red.avg q > 15.);
  let last = List.nth results 39 in
  Alcotest.(check bool) "forced drop" true (last = `Dropped)

let red_physical_capacity () =
  let pool = Pool.create () in
  let rng = Rng.create ~seed:3L in
  (* min_th huge: RED never early-drops, only physical overflow. *)
  let q =
    Red.create ~rng ~pool
      { (red_params 3) with Red.min_th = 1000.; max_th = 2000.; w_q = 0.001 }
  in
  let r = List.init 5 (fun _ -> Red.enqueue q ~now:Time.zero (mk_packet pool)) in
  Alcotest.(check int) "held 3" 3 (Red.length q);
  Alcotest.(check bool) "4th dropped" true (List.nth r 3 = `Dropped)

let red_early_drop_probabilistic () =
  let pool = Pool.create () in
  let rng = Rng.create ~seed:4L in
  let q = Red.create ~rng ~pool (red_params 1000) in
  (* Hold the queue between thresholds and count early drops. *)
  let drops = ref 0 and total = 5000 in
  for _ = 1 to total do
    (match Red.enqueue q ~now:Time.zero (mk_packet pool) with
    | `Dropped -> incr drops
    | `Enqueued -> ());
    (* keep instantaneous length near 10 (between 5 and 15) *)
    while Red.length q > 10 do
      let h = Red.dequeue q ~now:Time.zero in
      Pool.free pool h
    done
  done;
  let rate = float_of_int !drops /. float_of_int total in
  Alcotest.(check bool)
    (Printf.sprintf "early-drop rate %.3f in (0, 0.3)" rate)
    true
    (rate > 0.005 && rate < 0.3)

let red_average_decays_when_idle () =
  let pool = Pool.create () in
  let rng = Rng.create ~seed:5L in
  let q = Red.create ~rng ~pool (red_params 100) in
  for _ = 1 to 10 do
    ignore (Red.enqueue q ~now:Time.zero (mk_packet pool))
  done;
  let avg_busy = Red.avg q in
  while Red.length q > 0 do
    Pool.free pool (Red.dequeue q ~now:(Time.of_sec 1.))
  done;
  ignore (Red.enqueue q ~now:(Time.of_sec 10.) (mk_packet pool));
  Alcotest.(check bool) "decayed" true (Red.avg q < avg_busy /. 2.)

let mk_ecn_packet pool =
  Pool.alloc_data pool ~ecn_capable:true ~flow:0 ~src:1 ~dst:0 ~size_bytes:1000
    ~sent_at:Time.zero ~seq:0 ~is_retransmit:false ()

let red_marks_instead_of_dropping () =
  let pool = Pool.create () in
  let rng = Rng.create ~seed:7L in
  (* max_p = 1 in the marking band: every arrival between thresholds gets
     an early "drop", which for capable packets becomes a CE mark. *)
  let q =
    Red.create ~rng ~pool { (red_params 1000) with Red.max_p = 1.; ecn_mark = true }
  in
  (* Push the average between min_th (5) and max_th (15). *)
  let enqueued = ref 0 and dropped = ref 0 in
  let saw_ce = ref false in
  for _ = 1 to 200 do
    (match Red.enqueue q ~now:Time.zero (mk_ecn_packet pool) with
    | `Enqueued -> incr enqueued
    | `Dropped -> incr dropped);
    while Red.length q > 10 do
      let h = Red.dequeue q ~now:Time.zero in
      if Pool.ecn_ce pool h then saw_ce := true;
      Pool.free pool h
    done
  done;
  Alcotest.(check bool) "marks happened" true (Red.marks q > 0);
  Alcotest.(check bool) "CE bit visible on dequeued packets" true !saw_ce;
  Alcotest.(check int) "no early drops of capable packets" 0 !dropped

let red_drops_non_capable_despite_ecn_mode () =
  let pool = Pool.create () in
  let rng = Rng.create ~seed:8L in
  let q =
    Red.create ~rng ~pool { (red_params 1000) with Red.max_p = 1.; ecn_mark = true }
  in
  let dropped = ref 0 in
  for _ = 1 to 200 do
    (match Red.enqueue q ~now:Time.zero (mk_packet pool) with
    | `Dropped -> incr dropped
    | `Enqueued -> ());
    while Red.length q > 10 do
      Pool.free pool (Red.dequeue q ~now:Time.zero)
    done
  done;
  Alcotest.(check bool) "non-capable still dropped" true (!dropped > 0);
  Alcotest.(check int) "no marks" 0 (Red.marks q)

let red_adaptive_max_p_moves () =
  let pool = Pool.create () in
  let rng = Rng.create ~seed:9L in
  let q = Red.create ~rng ~pool { (red_params 1000) with Red.adaptive = true } in
  let initial = Red.current_max_p q in
  (* Sustained congestion above max_th: max_p scales up (one step per 0.5 s). *)
  let now = ref 0.0 in
  for _ = 1 to 100 do
    now := !now +. 0.1;
    ignore (Red.enqueue q ~now:(Time.of_sec !now) (mk_packet pool))
  done;
  Alcotest.(check bool) "scaled up under congestion" true
    (Red.current_max_p q > initial);
  (* Long quiet period with an empty queue: max_p scales back down. *)
  while Red.length q > 0 do
    Pool.free pool (Red.dequeue q ~now:(Time.of_sec !now))
  done;
  let high = Red.current_max_p q in
  for _ = 1 to 100 do
    now := !now +. 1.0;
    ignore (Red.enqueue q ~now:(Time.of_sec !now) (mk_packet pool));
    let h = Red.dequeue q ~now:(Time.of_sec !now) in
    if not (Pool.is_nil h) then Pool.free pool h
  done;
  Alcotest.(check bool) "scaled down when idle" true (Red.current_max_p q < high)

let red_validates_params () =
  let pool = Pool.create () in
  let rng = Rng.create ~seed:6L in
  Alcotest.check_raises "thresholds" (Invalid_argument "Red.create: bad thresholds")
    (fun () -> ignore (Red.create ~rng ~pool { (red_params 10) with Red.max_th = 1. }))

let red_virtual_queue_ewma_catch_up () =
  let pool = Pool.create () in
  let rng = Rng.create ~seed:7L in
  let q = Red.create ~rng ~pool (red_params 100) in
  ignore (Red.enqueue q ~now:Time.zero (mk_packet pool));
  ignore (Red.enqueue q ~now:Time.zero (mk_packet pool));
  let avg0 = Red.avg q in
  (* virtual_update is the closed form of [m] EWMA samples at the
     frozen combined depth — check it against that form exactly. *)
  Red.set_virtual_queue q 40.;
  Red.virtual_update q ~arrivals:25.;
  let w_q = (red_params 100).Red.w_q in
  let keep = (1. -. w_q) ** 25. in
  let expected = (avg0 *. keep) +. ((2. +. 40.) *. (1. -. keep)) in
  check_float "closed-form catch-up" expected (Red.avg q);
  (* Non-positive arrival counts are a no-op. *)
  Red.virtual_update q ~arrivals:0.;
  Red.virtual_update q ~arrivals:(-3.);
  check_float "no-op on zero arrivals" expected (Red.avg q);
  (* A negative virtual backlog clamps to zero: the next sample sees
     only the physical depth. *)
  Red.set_virtual_queue q (-5.);
  Red.virtual_update q ~arrivals:1.;
  let expected' = (expected *. (1. -. w_q)) +. (2. *. w_q) in
  check_float "clamped at zero" expected' (Red.avg q)

let queue_disc_optional_avg () =
  let pool = Pool.create () in
  let dt = Queue_disc.droptail ~capacity:10 in
  let sfq = Queue_disc.sfq ~pool ~capacity:10 () in
  (* Off by default: no estimate, and the hybrid hooks are no-ops. *)
  Alcotest.(check (option (float 0.))) "droptail off" None
    (Queue_disc.avg_queue dt);
  Alcotest.(check (option (float 0.))) "sfq off" None (Queue_disc.avg_queue sfq);
  Queue_disc.set_virtual_queue dt 10.;
  Queue_disc.virtual_update dt ~arrivals:5.;
  Alcotest.(check (option (float 0.))) "still off after hybrid hooks" None
    (Queue_disc.avg_queue dt);
  List.iter
    (fun q ->
      Queue_disc.enable_avg q ~w_q:0.5;
      (* Each arrival samples the pre-enqueue occupancy, RED-style:
         first packet sees 0, second sees 1. *)
      ignore (Queue_disc.enqueue q ~now:Time.zero (mk_packet pool));
      ignore (Queue_disc.enqueue q ~now:Time.zero (mk_packet pool));
      match Queue_disc.avg_queue q with
      | None -> Alcotest.fail "no estimate after enable_avg"
      | Some avg -> check_float "two samples" 0.5 avg)
    [ dt; sfq ];
  Alcotest.check_raises "bad w_q"
    (Invalid_argument "Droptail.enable_avg: bad w_q") (fun () ->
      Queue_disc.enable_avg (Queue_disc.droptail ~capacity:4) ~w_q:0.)

(* ------------------------------------------------------------------ *)
(* SFQ *)

let sfq_round_robin_service () =
  let pool = Pool.create () in
  let q = Sfq.create ~buckets:4 ~pool ~capacity:100 () in
  (* Find two flows in different buckets. *)
  let flow_a = 0 in
  let flow_b =
    let rec find fl =
      if Sfq.bucket_of_flow q fl <> Sfq.bucket_of_flow q flow_a then fl else find (fl + 1)
    in
    find 1
  in
  (* 3 packets of A then 3 of B: round-robin interleaves the service. *)
  List.iter (fun _ -> ignore (Sfq.enqueue q (mk_packet ~flow:flow_a pool))) [ 1; 2; 3 ];
  List.iter (fun _ -> ignore (Sfq.enqueue q (mk_packet ~flow:flow_b pool))) [ 1; 2; 3 ];
  let order = List.init 6 (fun _ -> Pool.flow pool (Sfq.dequeue q)) in
  let rec alternates = function
    | a :: b :: rest -> a <> b && alternates (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool)
    (Printf.sprintf "interleaved service %s"
       (String.concat "," (List.map string_of_int order)))
    true (alternates order)

let sfq_overflow_penalizes_longest () =
  let pool = Pool.create () in
  let q = Sfq.create ~buckets:4 ~pool ~capacity:4 () in
  let flow_a = 0 in
  let flow_b =
    let rec find fl =
      if Sfq.bucket_of_flow q fl <> Sfq.bucket_of_flow q flow_a then fl else find (fl + 1)
    in
    find 1
  in
  (* Fill the whole buffer with the hog A. *)
  List.iter (fun _ -> ignore (Sfq.enqueue q (mk_packet ~flow:flow_a pool))) [ 1; 2; 3; 4 ];
  (* B's arrival evicts one of A's packets rather than being dropped. *)
  (match Sfq.enqueue q (mk_packet ~flow:flow_b pool) with
  | `Enqueued_dropping victim ->
      Alcotest.(check int) "victim from hog" flow_a (Pool.flow pool victim)
  | `Enqueued | `Dropped -> Alcotest.fail "expected eviction");
  (* A's own arrival at a full buffer with A longest is refused. *)
  (match Sfq.enqueue q (mk_packet ~flow:flow_a pool) with
  | `Dropped -> ()
  | `Enqueued | `Enqueued_dropping _ -> Alcotest.fail "expected drop of the hog");
  Alcotest.(check int) "capacity held" 4 (Sfq.length q)

let sfq_single_flow_fifo () =
  let pool = Pool.create () in
  let q = Sfq.create ~pool ~capacity:10 () in
  List.iter (fun i -> ignore (Sfq.enqueue q (mk_packet ~seq:i pool))) [ 0; 1; 2 ];
  let seqs = List.init 3 (fun _ -> Pool.seq pool (Sfq.dequeue q)) in
  Alcotest.(check (list int)) "fifo within flow" [ 0; 1; 2 ] seqs;
  Alcotest.(check bool) "drained" true (Pool.is_nil (Sfq.dequeue q))

(* ------------------------------------------------------------------ *)
(* Link *)

let mk_link ?(capacity = 100) sched pool ~bandwidth ~delay ~deliver =
  Link.create sched ~name:"l" ~bandwidth ~delay
    ~queue:(Queue_disc.droptail ~capacity)
    ~pool ~deliver

let link_delivery_timing () =
  let sched = Scheduler.create () in
  let pool = Pool.create () in
  let delivered = ref [] in
  let link =
    mk_link sched pool ~bandwidth:(Units.mbps 1.) ~delay:(Time.of_ms 10.)
      ~deliver:(fun h ->
        delivered := Time.to_sec (Scheduler.now sched) :: !delivered;
        Pool.free pool h)
  in
  (* 1000 B at 1 Mbps = 8 ms serialize + 10 ms propagate = 18 ms. *)
  Link.send link (mk_packet ~size:1000 pool);
  Scheduler.run sched;
  (match !delivered with
  | [ at ] -> check_float "arrival time" 0.018 at
  | _ -> Alcotest.fail "expected exactly one delivery");
  Alcotest.(check int) "no leak" 0 (Pool.live pool)

let link_pipelining () =
  (* Two packets: serialization is sequential (8ms each), propagation
     overlaps: arrivals at 18 ms and 26 ms. *)
  let sched = Scheduler.create () in
  let pool = Pool.create () in
  let times = ref [] in
  let link =
    mk_link sched pool ~bandwidth:(Units.mbps 1.) ~delay:(Time.of_ms 10.)
      ~deliver:(fun h ->
        times := Time.to_sec (Scheduler.now sched) :: !times;
        Pool.free pool h)
  in
  Link.send link (mk_packet ~size:1000 pool);
  Link.send link (mk_packet ~size:1000 pool);
  Scheduler.run sched;
  Alcotest.(check (list (float 1e-9))) "pipelined" [ 0.018; 0.026 ] (List.rev !times)

let link_preserves_order () =
  let sched = Scheduler.create () in
  let pool = Pool.create () in
  let seqs = ref [] in
  let link =
    mk_link sched pool ~bandwidth:(Units.mbps 10.) ~delay:(Time.of_ms 1.)
      ~deliver:(fun h ->
        seqs := Pool.seq pool h :: !seqs;
        Pool.free pool h)
  in
  List.iter (fun i -> Link.send link (mk_packet ~seq:i pool)) [ 0; 1; 2; 3; 4 ];
  Scheduler.run sched;
  Alcotest.(check (list int)) "order" [ 0; 1; 2; 3; 4 ] (List.rev !seqs)

let link_drops_and_counters () =
  let sched = Scheduler.create () in
  let pool = Pool.create () in
  let link =
    mk_link ~capacity:2 sched pool ~bandwidth:(Units.kbps 1.) (* very slow *)
      ~delay:(Time.of_ms 1.)
      ~deliver:(Pool.free pool)
  in
  let drops = ref 0 in
  Link.on_drop link (fun _ _ -> incr drops);
  (* First starts transmitting immediately (leaves queue), next two queue,
     remaining two drop. *)
  List.iter (fun i -> Link.send link (mk_packet ~seq:i pool)) [ 0; 1; 2; 3; 4 ];
  Alcotest.(check int) "arrivals" 5 (Link.arrivals link);
  Alcotest.(check int) "drops" 2 (Link.drops link);
  Alcotest.(check int) "listener drops" 2 !drops;
  (* The link owns its drops: the two refused packets are already back in
     the pool while the other three are still queued or in flight. *)
  Alcotest.(check int) "dropped packets freed" 3 (Pool.live pool);
  Scheduler.run sched;
  Alcotest.(check int) "departures" 3 (Link.departures link);
  Alcotest.(check int) "bytes" 3000 (Link.bytes_delivered link);
  Alcotest.(check int) "all freed after run" 0 (Pool.live pool)

let link_listeners_fire () =
  let sched = Scheduler.create () in
  let pool = Pool.create () in
  let link =
    mk_link ~capacity:10 sched pool ~bandwidth:(Units.mbps 1.) ~delay:(Time.of_ms 1.)
      ~deliver:(Pool.free pool)
  in
  let arrivals = ref 0 and departs = ref 0 in
  Link.on_arrival link (fun _ _ -> incr arrivals);
  Link.on_depart link (fun _ _ -> incr departs);
  Link.send link (mk_packet pool);
  Scheduler.run sched;
  Alcotest.(check int) "arrival listener" 1 !arrivals;
  Alcotest.(check int) "depart listener" 1 !departs

let link_reclaim_drains_pool () =
  let sched = Scheduler.create () in
  let pool = Pool.create () in
  let link =
    mk_link ~capacity:10 sched pool ~bandwidth:(Units.kbps 8.) (* 1 s per 1000 B *)
      ~delay:(Time.of_ms 1.)
      ~deliver:(Pool.free pool)
  in
  List.iter (fun _ -> Link.send link (mk_packet pool)) [ 1; 2; 3; 4 ];
  (* Stop mid-transfer: one packet in flight, three queued. *)
  Scheduler.run ~until:(Time.of_sec 0.5) sched;
  Alcotest.(check bool) "packets outstanding" true (Pool.live pool > 0);
  Link.reclaim link;
  Alcotest.(check int) "reclaim drains" 0 (Pool.live pool)

(* ------------------------------------------------------------------ *)
(* Router *)

let router_routes_by_destination () =
  let sched = Scheduler.create () in
  let pool = Pool.create () in
  let to_a = ref 0 and to_b = ref 0 in
  let mk deliver =
    mk_link ~capacity:10 sched pool ~bandwidth:(Units.mbps 10.) ~delay:(Time.of_ms 1.)
      ~deliver
  in
  let la =
    mk (fun h ->
        incr to_a;
        Pool.free pool h)
  in
  let lb =
    mk (fun h ->
        incr to_b;
        Pool.free pool h)
  in
  let r = Router.create ~name:"gw" ~pool () in
  Router.add_route r ~dst:1 la;
  Router.set_default r lb;
  Router.receive r (mk_packet ~dst:1 pool);
  Router.receive r (mk_packet ~dst:9 pool);
  Router.receive r (mk_packet ~dst:1 pool);
  Scheduler.run sched;
  Alcotest.(check int) "to a" 2 !to_a;
  Alcotest.(check int) "to b (default)" 1 !to_b;
  Alcotest.(check int) "forwarded" 3 (Router.forwarded r)

let router_no_route_fails () =
  let pool = Pool.create () in
  let r = Router.create ~name:"gw" ~pool () in
  Alcotest.check_raises "no route" (Failure "Router gw: no route for destination 5")
    (fun () -> Router.receive r (mk_packet ~dst:5 pool))

let router_duplicate_route_rejected () =
  let sched = Scheduler.create () in
  let pool = Pool.create () in
  let l =
    mk_link ~capacity:1 sched pool ~bandwidth:(Units.mbps 1.) ~delay:(Time.of_ms 1.)
      ~deliver:(Pool.free pool)
  in
  let r = Router.create ~name:"gw" ~pool () in
  Router.add_route r ~dst:1 l;
  Alcotest.check_raises "dup"
    (Invalid_argument "Router.add_route(gw): duplicate route for 1") (fun () ->
      Router.add_route r ~dst:1 l)

(* ------------------------------------------------------------------ *)
(* Node and Monitor *)

let node_handler_dispatch () =
  let pool = Pool.create () in
  let n = Node.create ~id:3 ~pool in
  let got = ref (-1) in
  Node.set_handler n (fun h -> got := Pool.uid pool h);
  let p = mk_packet ~dst:3 pool in
  let uid = Pool.uid pool p in
  Node.receive n p;
  Alcotest.(check int) "received count" 1 (Node.received n);
  Alcotest.(check int) "handler saw packet" uid !got;
  (* The node is a sink: the handle is dead once the handler returns. *)
  Alcotest.(check int) "freed at sink" 0 (Pool.live pool);
  (match Pool.flow pool p with
  | _ -> Alcotest.fail "handle survived the sink"
  | exception Invalid_argument _ -> ())

let monitor_arrival_binner_counts_data_only () =
  let sched = Scheduler.create () in
  let pool = Pool.create () in
  let link =
    mk_link sched pool ~bandwidth:(Units.mbps 10.) ~delay:(Time.of_ms 1.)
      ~deliver:(Pool.free pool)
  in
  let binned = Monitor.arrival_binner pool link ~origin:0. ~width:1. in
  Link.send link (mk_packet pool);
  Link.send link
    (Pool.alloc_ack pool ~flow:0 ~src:0 ~dst:1 ~size_bytes:40 ~sent_at:Time.zero
       ~ack:0 ~ece:false ~sack:[] ());
  Scheduler.run sched;
  Alcotest.(check int) "counts only data" 1 (Netstats.Binned.total binned)

let monitor_drop_runs () =
  let sched = Scheduler.create () in
  let pool = Pool.create () in
  let link =
    mk_link ~capacity:2 sched pool ~bandwidth:(Units.kbps 1.) (* glacial *)
      ~delay:(Time.of_ms 1.)
      ~deliver:(Pool.free pool)
  in
  let runs = Monitor.drop_run_recorder link in
  (* 1 transmits, 2 queue, then: drop drop, accept (after dequeue), drop. *)
  List.iter (fun i -> Link.send link (mk_packet ~seq:i pool)) [ 0; 1; 2 ];
  Link.send link (mk_packet ~seq:3 pool);
  Link.send link (mk_packet ~seq:4 pool);
  (* free one slot, then one acceptance breaks the run, then another drop *)
  Scheduler.run ~until:(Time.of_sec 9.) sched;
  Link.send link (mk_packet ~seq:5 pool);
  Link.send link (mk_packet ~seq:6 pool);
  Alcotest.(check (list int)) "runs" [ 2; 1 ] (runs ())

let monitor_queue_sampler () =
  let sched = Scheduler.create () in
  let pool = Pool.create () in
  let link =
    mk_link sched pool ~bandwidth:(Units.kbps 8.) (* 1 s per 1000 B *)
      ~delay:(Time.of_ms 1.)
      ~deliver:(Pool.free pool)
  in
  let series =
    Monitor.queue_sampler sched link ~every:(Time.of_sec 0.25) ~until:(Time.of_sec 2.)
  in
  (* Three packets: one transmitting, two queued initially. *)
  List.iter (fun _ -> Link.send link (mk_packet ~size:1000 pool)) [ 1; 2; 3 ];
  Scheduler.run sched;
  let values = Netstats.Series.values series in
  Alcotest.(check bool) "saw queue of 2" true (Array.exists (fun v -> v = 2.) values);
  Alcotest.(check bool) "saw empty queue" true (Array.exists (fun v -> v = 0.) values)

(* ------------------------------------------------------------------ *)
(* Tracer *)

let tracer_records_lifecycle () =
  let sched = Scheduler.create () in
  let pool = Pool.create () in
  let tracer = Tracer.create () in
  let link =
    mk_link ~capacity:1 sched pool ~bandwidth:(Units.kbps 8.) (* 1 s per 1000 B *)
      ~delay:(Time.of_ms 1.)
      ~deliver:(Pool.free pool)
  in
  Tracer.attach tracer pool link;
  (* First transmits, second queues, third drops. *)
  List.iter (fun i -> Link.send link (mk_packet ~flow:i ~seq:i pool)) [ 0; 1; 2 ];
  Scheduler.run sched;
  let evs = Tracer.events tracer in
  let kinds = Array.to_list (Array.map (fun e -> e.Tracer.kind) evs) in
  Alcotest.(check int) "6 events" 6 (List.length kinds);
  Alcotest.(check int) "3 arrivals" 3
    (List.length (List.filter (( = ) Tracer.Arrive) kinds));
  Alcotest.(check int) "1 drop" 1 (List.length (List.filter (( = ) Tracer.Drop) kinds));
  Alcotest.(check int) "2 deliveries" 2
    (List.length (List.filter (( = ) Tracer.Deliver) kinds));
  (* Drops are attributed to the right flow. *)
  Alcotest.(check int) "flow 2 dropped" 1 (List.length (Tracer.drops_of_flow tracer 2));
  Alcotest.(check int) "flow 0 clean" 0 (List.length (Tracer.drops_of_flow tracer 0))

let tracer_per_flow_and_bytes () =
  let sched = Scheduler.create () in
  let pool = Pool.create () in
  let tracer = Tracer.create () in
  let link =
    mk_link sched pool ~bandwidth:(Units.mbps 10.) ~delay:(Time.of_ms 1.)
      ~deliver:(Pool.free pool)
  in
  Tracer.attach tracer pool link;
  List.iter (fun fl -> Link.send link (mk_packet ~flow:fl pool)) [ 0; 0; 1 ];
  Scheduler.run sched;
  let arrivals = Tracer.per_flow_counts tracer Tracer.Arrive in
  Alcotest.(check (option int)) "flow 0 twice" (Some 2) (Hashtbl.find_opt arrivals 0);
  Alcotest.(check (option int)) "flow 1 once" (Some 1) (Hashtbl.find_opt arrivals 1);
  let bytes = Tracer.delivered_bytes_between tracer ~link:"l" 0. 10. in
  Alcotest.(check int) "all bytes delivered" 3000 bytes

let tracer_text_format () =
  let sched = Scheduler.create () in
  let pool = Pool.create () in
  let tracer = Tracer.create () in
  let link =
    Link.create sched ~name:"bottleneck" ~bandwidth:(Units.mbps 10.)
      ~delay:(Time.of_ms 1.)
      ~queue:(Queue_disc.droptail ~capacity:10)
      ~pool
      ~deliver:(Pool.free pool)
  in
  Tracer.attach tracer pool link;
  Link.send link (mk_packet ~flow:7 ~seq:42 pool);
  Scheduler.run sched;
  let line = Format.asprintf "%a" Tracer.pp_event (Tracer.events tracer).(0) in
  Alcotest.(check bool) "has link name" true (Astring_like.contains line "bottleneck");
  Alcotest.(check bool) "has flow" true (Astring_like.contains line "flow=7");
  Alcotest.(check bool) "has seq" true (Astring_like.contains line "seq=42");
  Alcotest.(check bool) "arrive marker" true (String.length line > 0 && line.[0] = '+')

let tracer_attach_bus_matches_attach () =
  (* Two identical links: one watched directly, one through the bus. The
     tracer must record the same trace either way. *)
  let record via =
    let sched = Scheduler.create () in
    let pool = Pool.create () in
    let tracer = Tracer.create () in
    let link =
      mk_link ~capacity:1 sched pool ~bandwidth:(Units.kbps 8.) ~delay:(Time.of_ms 1.)
        ~deliver:(Pool.free pool)
    in
    via tracer pool link;
    List.iter (fun i -> Link.send link (mk_packet ~flow:i ~seq:i pool)) [ 0; 1; 2 ];
    Scheduler.run sched;
    Array.to_list
      (Array.map
         (fun e -> (e.Tracer.kind, e.Tracer.flow, e.Tracer.seq, e.Tracer.time))
         (Tracer.events tracer))
  in
  let direct = record Tracer.attach in
  let bused =
    record (fun tracer _pool link ->
        let bus = Telemetry.Event_bus.create () in
        Tracer.attach_bus tracer bus;
        Link.publish link bus;
        (* Non-packet traffic on the bus is ignored by the tracer. *)
        Telemetry.Event_bus.publish bus
          (Telemetry.Event_bus.Tcp
             { time = 0.; kind = Telemetry.Event_bus.Timeout; flow = 0; cwnd = 1. }))
  in
  Alcotest.(check int) "same event count" (List.length direct) (List.length bused);
  Alcotest.(check bool) "identical traces" true (direct = bused)

let link_queue_high_water_mark () =
  let sched = Scheduler.create () in
  let pool = Pool.create () in
  let link =
    mk_link sched pool ~bandwidth:(Units.kbps 8.) (* 1 s per 1000 B *)
      ~delay:(Time.of_ms 1.)
      ~deliver:(Pool.free pool)
  in
  (* One transmits immediately; the other three peak the queue at 3. *)
  List.iter (fun _ -> Link.send link (mk_packet pool)) [ 1; 2; 3; 4 ];
  Scheduler.run sched;
  Alcotest.(check int) "drained" 0 (Link.queue_length link);
  Alcotest.(check int) "peak was 3" 3 (Link.queue_high_water_mark link)

(* ------------------------------------------------------------------ *)
(* Properties *)

let sfq_conservation_property =
  QCheck.Test.make ~name:"sfq conserves packets" ~count:100
    QCheck.(pair (int_bound 50) (small_list (pair (int_bound 7) bool)))
    (fun (cap, ops) ->
      QCheck.assume (cap >= 1);
      let pool = Pool.create () in
      let q = Sfq.create ~buckets:4 ~pool ~capacity:cap () in
      let enqueued = ref 0 and evicted = ref 0 and dequeued = ref 0 in
      List.iter
        (fun (flow, push) ->
          if push then
            match Sfq.enqueue q (mk_packet ~flow pool) with
            | `Enqueued -> incr enqueued
            | `Dropped -> ()
            | `Enqueued_dropping _ ->
                incr enqueued;
                incr evicted
          else begin
            let h = Sfq.dequeue q in
            if not (Pool.is_nil h) then begin
              Pool.free pool h;
              incr dequeued
            end
          end)
        ops;
      Sfq.length q = !enqueued - !evicted - !dequeued && Sfq.length q <= cap)

let red_capacity_property =
  QCheck.Test.make ~name:"red never exceeds capacity" ~count:100
    QCheck.(pair (int_range 1 20) (small_list bool))
    (fun (cap, ops) ->
      let pool = Pool.create () in
      let rng = Rng.create ~seed:77L in
      let q = Red.create ~rng ~pool (red_params cap) in
      List.for_all
        (fun push ->
          if push then begin
            ignore (Red.enqueue q ~now:Time.zero (mk_packet pool));
            Red.length q <= cap
          end
          else begin
            let h = Red.dequeue q ~now:Time.zero in
            if not (Pool.is_nil h) then Pool.free pool h;
            true
          end)
        ops)

let pool_handle_roundtrip_property =
  QCheck.Test.make ~name:"pool free/realloc never aliases" ~count:200
    QCheck.(small_list bool)
    (fun ops ->
      let pool = Pool.create ~capacity:2 () in
      let live = ref [] in
      let next_seq = ref 0 in
      List.iter
        (fun push ->
          if push then begin
            incr next_seq;
            live := (mk_packet ~seq:!next_seq pool, !next_seq) :: !live
          end
          else
            match !live with
            | [] -> ()
            | (h, _) :: rest ->
                Pool.free pool h;
                live := rest)
        ops;
      (* Every surviving handle still reads its own packet's fields. *)
      List.for_all (fun (h, seq) -> Pool.seq pool h = seq) !live
      && Pool.live pool = List.length !live)

(* ------------------------------------------------------------------ *)
(* Flow_table *)

module Flow_table = Netsim.Flow_table

let ft_stale = Invalid_argument "Flow_table: stale or freed flow handle"

let flow_table_basic_rows () =
  let t = Flow_table.create ~capacity:4 ~ints_per_flow:3 ~floats_per_flow:2 () in
  let a = Flow_table.alloc t in
  let b = Flow_table.alloc t in
  Flow_table.set_int t a 0 11;
  Flow_table.set_int t b 0 22;
  Flow_table.set_float t a 1 0.5;
  Alcotest.(check int) "row a" 11 (Flow_table.get_int t a 0);
  Alcotest.(check int) "row b" 22 (Flow_table.get_int t b 0);
  Alcotest.(check (float 0.)) "float row" 0.5 (Flow_table.get_float t a 1);
  Alcotest.(check int) "live" 2 (Flow_table.live t);
  let slots = ref [] in
  Flow_table.iter_live t (fun s -> slots := s :: !slots);
  Alcotest.(check int) "iter_live visits both" 2 (List.length !slots);
  Flow_table.free t a;
  Flow_table.free t b;
  Alcotest.(check int) "drained" 0 (Flow_table.live t)

let flow_table_stale_handle_raises () =
  let t = Flow_table.create ~ints_per_flow:2 ~floats_per_flow:0 () in
  let h = Flow_table.alloc t in
  Flow_table.free t h;
  Alcotest.check_raises "read after free" ft_stale (fun () ->
      ignore (Flow_table.get_int t h 0));
  Alcotest.check_raises "double free" ft_stale (fun () -> Flow_table.free t h);
  Alcotest.check_raises "nil never live" ft_stale (fun () ->
      ignore (Flow_table.slot_of t Flow_table.nil));
  Alcotest.(check bool) "is_live is false, not raising" false
    (Flow_table.is_live t h)

let flow_table_recycled_slot_does_not_alias () =
  let t = Flow_table.create ~capacity:1 ~ints_per_flow:1 ~floats_per_flow:0 () in
  let old = Flow_table.alloc t in
  Flow_table.set_int t old 0 7;
  Flow_table.free t old;
  let fresh = Flow_table.alloc t in
  (* Same slot, new generation: the old handle must not reach it, and
     the row must come back zeroed. *)
  Alcotest.(check int) "same slot reused" (Flow_table.slot_of t fresh) 0;
  Alcotest.(check int) "row zeroed on alloc" 0 (Flow_table.get_int t fresh 0);
  Alcotest.check_raises "old handle cannot touch it" ft_stale (fun () ->
      Flow_table.set_int t old 0 99);
  Alcotest.(check int) "fresh row untouched" 0 (Flow_table.get_int t fresh 0)

let flow_table_growth_and_accounting () =
  let t = Flow_table.create ~capacity:2 ~ints_per_flow:4 ~floats_per_flow:3 () in
  Alcotest.(check int) "words = ints + floats + 2" 9 (Flow_table.words_per_flow t);
  Alcotest.(check int) "bytes = 8 * words" 72 (Flow_table.bytes_per_flow t);
  Alcotest.(check int) "no growth yet" 0 (Flow_table.growth_count t);
  let hs = List.init 5 (fun _ -> Flow_table.alloc t) in
  Alcotest.(check bool) "grew past capacity 2" true (Flow_table.growth_count t >= 1);
  Alcotest.(check int) "high-water mark" 5 (Flow_table.high_water_mark t);
  Alcotest.(check int) "footprint covers capacity"
    (Flow_table.capacity t * Flow_table.bytes_per_flow t)
    (Flow_table.footprint_bytes t);
  List.iter (Flow_table.free t) hs;
  Alcotest.(check int) "hwm survives drain" 5 (Flow_table.high_water_mark t);
  (* Pre-sized at the flow count, the same load never grows. *)
  let t2 = Flow_table.create ~capacity:5 ~ints_per_flow:4 ~floats_per_flow:3 () in
  let hs2 = List.init 5 (fun _ -> Flow_table.alloc t2) in
  List.iter (Flow_table.free t2) hs2;
  Alcotest.(check int) "pre-size holds" 0 (Flow_table.growth_count t2)

let flow_table_keyed_roundtrip () =
  let t = Flow_table.create ~ints_per_flow:1 ~floats_per_flow:0 () in
  let h = Flow_table.alloc t in
  let s = Flow_table.slot_of t h in
  Alcotest.(check bool) "slot rederives its handle" true
    (Flow_table.handle_of_slot t s = h);
  Flow_table.free t h;
  Alcotest.check_raises "free slot has no handle"
    (Invalid_argument "Flow_table.handle_of_slot: free slot") (fun () ->
      ignore (Flow_table.handle_of_slot t s))

let suite =
  [
    ( "net.units",
      [
        Alcotest.test_case "transmission time" `Quick units_transmission_time;
        Alcotest.test_case "invalid bandwidth" `Quick units_invalid;
      ] );
    ( "net.pool",
      [
        Alcotest.test_case "unique uids" `Quick pool_uids_unique;
        Alcotest.test_case "classifiers" `Quick pool_classifiers;
        Alcotest.test_case "stale handle raises" `Quick pool_stale_handle_raises;
        Alcotest.test_case "recycled slot does not alias" `Quick
          pool_recycled_slot_does_not_alias;
        Alcotest.test_case "live accounting" `Quick pool_accounting;
        Alcotest.test_case "sack side table" `Quick pool_sack_side_table;
      ] );
    ( "net.flow_table",
      [
        Alcotest.test_case "rows are independent" `Quick flow_table_basic_rows;
        Alcotest.test_case "stale handle raises" `Quick flow_table_stale_handle_raises;
        Alcotest.test_case "recycled slot does not alias" `Quick
          flow_table_recycled_slot_does_not_alias;
        Alcotest.test_case "growth and accounting" `Quick flow_table_growth_and_accounting;
        Alcotest.test_case "slot/handle roundtrip" `Quick flow_table_keyed_roundtrip;
      ] );
    ( "net.droptail",
      [
        Alcotest.test_case "capacity" `Quick droptail_capacity;
        Alcotest.test_case "high-water mark" `Quick droptail_high_water_mark;
        Alcotest.test_case "fifo order" `Quick droptail_fifo_order;
      ] );
    ( "net.red",
      [
        Alcotest.test_case "no drops below min_th" `Quick red_no_drops_below_min_th;
        Alcotest.test_case "forced drops above max_th" `Quick red_always_drops_above_max_th;
        Alcotest.test_case "physical capacity" `Quick red_physical_capacity;
        Alcotest.test_case "probabilistic early drop" `Quick red_early_drop_probabilistic;
        Alcotest.test_case "average decays when idle" `Quick red_average_decays_when_idle;
        Alcotest.test_case "ecn marks instead of dropping" `Quick red_marks_instead_of_dropping;
        Alcotest.test_case "non-capable packets still drop" `Quick
          red_drops_non_capable_despite_ecn_mode;
        Alcotest.test_case "adaptive max_p tracks load" `Quick red_adaptive_max_p_moves;
        Alcotest.test_case "validates parameters" `Quick red_validates_params;
        Alcotest.test_case "virtual queue EWMA catch-up" `Quick
          red_virtual_queue_ewma_catch_up;
        Alcotest.test_case "optional droptail/sfq average" `Quick
          queue_disc_optional_avg;
      ] );
    ( "net.sfq",
      [
        Alcotest.test_case "round-robin service" `Quick sfq_round_robin_service;
        Alcotest.test_case "overflow penalizes longest" `Quick sfq_overflow_penalizes_longest;
        Alcotest.test_case "single flow is fifo" `Quick sfq_single_flow_fifo;
      ] );
    ( "net.link",
      [
        Alcotest.test_case "serialization + propagation" `Quick link_delivery_timing;
        Alcotest.test_case "pipelining" `Quick link_pipelining;
        Alcotest.test_case "order preservation" `Quick link_preserves_order;
        Alcotest.test_case "drops and counters" `Quick link_drops_and_counters;
        Alcotest.test_case "listeners" `Quick link_listeners_fire;
        Alcotest.test_case "queue high-water mark" `Quick link_queue_high_water_mark;
        Alcotest.test_case "reclaim drains pool" `Quick link_reclaim_drains_pool;
      ] );
    ( "net.router",
      [
        Alcotest.test_case "routes by destination" `Quick router_routes_by_destination;
        Alcotest.test_case "missing route fails" `Quick router_no_route_fails;
        Alcotest.test_case "duplicate route rejected" `Quick router_duplicate_route_rejected;
      ] );
    ( "net.node",
      [ Alcotest.test_case "handler dispatch" `Quick node_handler_dispatch ] );
    ( "net.tracer",
      [
        Alcotest.test_case "records packet lifecycle" `Quick tracer_records_lifecycle;
        Alcotest.test_case "per-flow counts and bytes" `Quick tracer_per_flow_and_bytes;
        Alcotest.test_case "text format" `Quick tracer_text_format;
        Alcotest.test_case "bus attachment matches direct" `Quick
          tracer_attach_bus_matches_attach;
      ] );
    ( "net.properties",
      [
        QCheck_alcotest.to_alcotest sfq_conservation_property;
        QCheck_alcotest.to_alcotest red_capacity_property;
        QCheck_alcotest.to_alcotest pool_handle_roundtrip_property;
      ] );
    ( "net.monitor",
      [
        Alcotest.test_case "arrival binner counts data" `Quick
          monitor_arrival_binner_counts_data_only;
        Alcotest.test_case "queue sampler" `Quick monitor_queue_sampler;
        Alcotest.test_case "drop runs" `Quick monitor_drop_runs;
      ] );
  ]
