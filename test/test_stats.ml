(* Tests for the statistics library. *)

open Netstats

let check_float = Alcotest.(check (float 1e-9))
let check_close tol = Alcotest.(check (float tol))

(* ------------------------------------------------------------------ *)
(* Welford *)

let direct_mean xs = Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let direct_variance xs =
  let m = direct_mean xs in
  let n = Array.length xs in
  Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs /. float_of_int (n - 1)

let welford_matches_direct () =
  let xs = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  let w = Welford.create () in
  Array.iter (Welford.add w) xs;
  check_close 1e-9 "mean" (direct_mean xs) (Welford.mean w);
  check_close 1e-9 "variance" (direct_variance xs) (Welford.variance w);
  check_float "min" 2. (Welford.min w);
  check_float "max" 9. (Welford.max w);
  check_float "sum" 40. (Welford.sum w);
  Alcotest.(check int) "count" 8 (Welford.count w)

let welford_empty_and_single () =
  let w = Welford.create () in
  check_float "empty mean" 0. (Welford.mean w);
  check_float "empty variance" 0. (Welford.variance w);
  Welford.add w 5.;
  check_float "single mean" 5. (Welford.mean w);
  check_float "single variance" 0. (Welford.variance w);
  check_float "single cov" 0. (Welford.cov w)

let welford_cov () =
  let w = Welford.create () in
  List.iter (Welford.add w) [ 1.; 1.; 1.; 1. ];
  check_float "constant cov 0" 0. (Welford.cov w);
  let w2 = Welford.create () in
  List.iter (Welford.add w2) [ 0.; 2. ];
  (* mean 1, sample std = sqrt(2) *)
  check_close 1e-9 "cov" (sqrt 2.) (Welford.cov w2)

let welford_merge_property =
  QCheck.Test.make ~name:"welford merge == bulk add" ~count:200
    QCheck.(pair (list (float_bound_exclusive 100.)) (list (float_bound_exclusive 100.)))
    (fun (xs, ys) ->
      QCheck.assume (xs <> [] || ys <> []);
      let wa = Welford.create () and wb = Welford.create () and wall = Welford.create () in
      List.iter (Welford.add wa) xs;
      List.iter (Welford.add wb) ys;
      List.iter (Welford.add wall) (xs @ ys);
      let merged = Welford.merge wa wb in
      let close a b = Float.abs (a -. b) < 1e-6 *. (1. +. Float.abs a) in
      Welford.count merged = Welford.count wall
      && close (Welford.mean merged) (Welford.mean wall)
      && close (Welford.variance merged) (Welford.variance wall))

let welford_population_variance () =
  let w = Welford.create () in
  List.iter (Welford.add w) [ 1.; 3. ];
  check_float "population" 1. (Welford.variance_population w);
  check_float "sample" 2. (Welford.variance w)

(* ------------------------------------------------------------------ *)
(* Summary and quantiles *)

let summary_basic () =
  let s = Summary.of_list [ 1.; 2.; 3.; 4. ] in
  check_float "mean" 2.5 s.Summary.mean;
  check_float "min" 1. s.Summary.min;
  check_float "max" 4. s.Summary.max;
  check_float "sum" 10. s.Summary.sum;
  Alcotest.(check int) "count" 4 s.Summary.count

let summary_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Summary.of_array: empty")
    (fun () -> ignore (Summary.of_array [||]))

let quantile_interpolation () =
  let xs = [| 10.; 20.; 30.; 40. |] in
  check_float "q0" 10. (Summary.quantile xs 0.);
  check_float "q1" 40. (Summary.quantile xs 1.);
  check_float "median" 25. (Summary.median xs);
  check_float "q0.25" 17.5 (Summary.quantile xs 0.25)

let quantile_unsorted_input () =
  let xs = [| 40.; 10.; 30.; 20. |] in
  check_float "median of unsorted" 25. (Summary.median xs);
  (* input untouched *)
  Alcotest.(check (float 0.)) "not mutated" 40. xs.(0)

(* ------------------------------------------------------------------ *)
(* Binned *)

let binned_counts () =
  let b = Binned.create ~origin:10. ~width:1. () in
  List.iter (Binned.record b) [ 10.1; 10.9; 11.5; 13.2; 9.0 (* ignored *) ];
  Alcotest.(check int) "total excludes pre-origin" 4 (Binned.total b);
  let counts = Binned.counts b ~upto:14. in
  Alcotest.(check int) "4 complete bins" 4 (Array.length counts);
  Alcotest.(check (array (float 0.))) "per-bin" [| 2.; 1.; 0.; 1. |] counts

let binned_partial_bin_excluded () =
  let b = Binned.create ~origin:0. ~width:1. () in
  Binned.record b 0.5;
  Binned.record b 1.5;
  let counts = Binned.counts b ~upto:1.7 in
  Alcotest.(check int) "only complete bins" 1 (Array.length counts);
  Alcotest.(check (float 0.)) "first bin" 1. counts.(0)

let binned_record_many () =
  let b = Binned.create ~origin:0. ~width:0.5 () in
  Binned.record_many b 0.2 7;
  Alcotest.(check (array (float 0.))) "bulk" [| 7. |] (Binned.counts b ~upto:0.5)

let binned_poisson_cov_property () =
  (* Counts of a Poisson process over bins of width w have cov ~ 1/sqrt(rate*w). *)
  let rng = Sim_engine.Rng.create ~seed:99L in
  let b = Binned.create ~origin:0. ~width:1. () in
  let rate = 50. in
  let t = ref 0. in
  while !t < 2000. do
    t := !t +. Sim_engine.Rng.exponential rng ~mean:(1. /. rate);
    if !t < 2000. then Binned.record b !t
  done;
  let s = Summary.of_array (Binned.counts b ~upto:2000.) in
  check_close 0.5 "mean per bin" rate s.Summary.mean;
  check_close 0.02 "cov ~ 1/sqrt(50)" (1. /. sqrt rate) s.Summary.cov

(* ------------------------------------------------------------------ *)
(* Series *)

let series_basic () =
  let s = Series.create () in
  Series.add s 0. 1.;
  Series.add s 1. 2.;
  Series.add s 1. 3.;
  (* same time allowed *)
  Series.add s 2. 4.;
  Alcotest.(check int) "length" 4 (Series.length s);
  Alcotest.(check (array (float 0.))) "times" [| 0.; 1.; 1.; 2. |] (Series.times s);
  Alcotest.(check (array (float 0.))) "values" [| 1.; 2.; 3.; 4. |] (Series.values s)

let series_rejects_backwards () =
  let s = Series.create () in
  Series.add s 5. 1.;
  Alcotest.check_raises "backwards" (Invalid_argument "Series.add: time went backwards")
    (fun () -> Series.add s 4. 1.)

let series_resample_zoh () =
  let s = Series.create () in
  Series.add s 0. 1.;
  Series.add s 1. 5.;
  Series.add s 2.5 7.;
  let r = Series.resample s ~dt:1. ~upto:4. in
  Alcotest.(check (array (float 0.))) "zoh" [| 1.; 5.; 5.; 7. |] r

let series_between () =
  let s = Series.create () in
  List.iter (fun (t, v) -> Series.add s t v) [ (0., 1.); (1., 2.); (2., 3.); (3., 4.) ];
  let got = Series.between s 1. 3. in
  Alcotest.(check int) "two samples" 2 (List.length got);
  Alcotest.(check (float 0.)) "first" 2. (snd (List.hd got))

(* ------------------------------------------------------------------ *)
(* Regression *)

let regression_exact_line () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  let ys = Array.map (fun x -> (2. *. x) +. 1.) xs in
  let fit = Regression.ols xs ys in
  check_close 1e-9 "slope" 2. fit.Regression.slope;
  check_close 1e-9 "intercept" 1. fit.Regression.intercept;
  check_close 1e-9 "r2" 1. fit.Regression.r2

let regression_loglog () =
  (* y = 3 x^0.5 -> slope 0.5 in log-log *)
  let xs = Array.init 20 (fun i -> float_of_int (i + 1)) in
  let ys = Array.map (fun x -> 3. *. sqrt x) xs in
  let fit = Regression.ols_loglog xs ys in
  check_close 1e-6 "slope" 0.5 fit.Regression.slope

let regression_errors () =
  Alcotest.check_raises "length" (Invalid_argument "Regression.ols: length mismatch")
    (fun () -> ignore (Regression.ols [| 1. |] [| 1.; 2. |]));
  Alcotest.check_raises "too few" (Invalid_argument "Regression.ols: need at least 2 points")
    (fun () -> ignore (Regression.ols [| 1. |] [| 1. |]));
  Alcotest.check_raises "degenerate x" (Invalid_argument "Regression.ols: all x equal")
    (fun () -> ignore (Regression.ols [| 1.; 1. |] [| 1.; 2. |]))

(* ------------------------------------------------------------------ *)
(* Autocorr *)

let autocorr_constant () =
  let acf = Autocorr.acf (Array.make 50 3.) 5 in
  check_float "lag0" 1. acf.(0);
  check_float "lag1" 0. acf.(1)

let autocorr_alternating () =
  (* x = +1,-1,+1,... has acf(1) ~ -1, acf(2) ~ +1 (biased estimator). *)
  let xs = Array.init 200 (fun i -> if i mod 2 = 0 then 1. else -1.) in
  let acf = Autocorr.acf xs 2 in
  check_close 0.02 "lag1" (-1.) acf.(1);
  check_close 0.02 "lag2" 1. acf.(2)

let autocorr_iid_near_zero () =
  let rng = Sim_engine.Rng.create ~seed:5L in
  let xs = Array.init 5000 (fun _ -> Sim_engine.Rng.float rng) in
  let acf = Autocorr.acf xs 3 in
  Alcotest.(check bool) "lag1 small" true (Float.abs acf.(1) < 0.05);
  Alcotest.(check bool) "lag3 small" true (Float.abs acf.(3) < 0.05)

(* ------------------------------------------------------------------ *)
(* Correlation *)

let pearson_perfect () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  let ys = Array.map (fun x -> (3. *. x) +. 1.) xs in
  check_close 1e-9 "corr +1" 1. (Correlation.pearson xs ys);
  let neg = Array.map (fun x -> -.x) xs in
  check_close 1e-9 "corr -1" (-1.) (Correlation.pearson xs neg)

let pearson_constant_is_zero () =
  check_float "constant" 0. (Correlation.pearson [| 1.; 1.; 1. |] [| 1.; 2.; 3. |])

let pearson_independent_near_zero () =
  let rng = Sim_engine.Rng.create ~seed:77L in
  let xs = Array.init 5000 (fun _ -> Sim_engine.Rng.float rng) in
  let ys = Array.init 5000 (fun _ -> Sim_engine.Rng.float rng) in
  Alcotest.(check bool) "near zero" true (Float.abs (Correlation.pearson xs ys) < 0.05)

let pearson_errors () =
  Alcotest.check_raises "mismatch" (Invalid_argument "Correlation.pearson: length mismatch")
    (fun () -> ignore (Correlation.pearson [| 1. |] [| 1.; 2. |]));
  Alcotest.check_raises "short" (Invalid_argument "Correlation.pearson: need at least 2 samples")
    (fun () -> ignore (Correlation.pearson [| 1. |] [| 1. |]))

let mean_pairwise_sync () =
  let base = [| 1.; 5.; 2.; 8.; 3. |] in
  let rows = [| base; Array.copy base; Array.copy base |] in
  check_close 1e-9 "identical rows" 1. (Correlation.mean_pairwise rows);
  let rng = Sim_engine.Rng.create ~seed:78L in
  let indep =
    Array.init 6 (fun _ -> Array.init 2000 (fun _ -> Sim_engine.Rng.float rng))
  in
  Alcotest.(check bool) "independent rows near 0" true
    (Float.abs (Correlation.mean_pairwise indep) < 0.05)

let cross_correlation_lag () =
  (* ys is xs shifted by 2: peak correlation at lag 2. *)
  let n = 200 in
  let rng = Sim_engine.Rng.create ~seed:79L in
  let xs = Array.init n (fun _ -> Sim_engine.Rng.float rng) in
  let ys = Array.init n (fun i -> if i >= 2 then xs.(i - 2) else 0.) in
  (* xs(t) matches ys(t+2), so the peak is at lag 2 of (xs, ys). *)
  let cc = Correlation.cross_correlation xs ys 4 in
  Alcotest.(check bool) "peak at lag 2" true
    (cc.(2) > 0.9 && cc.(2) > cc.(0) && cc.(2) > cc.(1))

(* ------------------------------------------------------------------ *)
(* Hurst *)

let hurst_iid_half () =
  let rng = Sim_engine.Rng.create ~seed:21L in
  let xs = Array.init 8192 (fun _ -> Sim_engine.Rng.float rng) in
  let h_vt = Hurst.estimate_variance_time xs in
  let h_rs = Hurst.estimate_rs xs in
  Alcotest.(check bool) "variance-time ~ 0.5"
    true
    (h_vt > 0.35 && h_vt < 0.65);
  Alcotest.(check bool) "R/S ~ 0.5-0.65 for iid" true (h_rs > 0.4 && h_rs < 0.7)

let hurst_trending_high () =
  (* A long-memory-ish series: cumulative random walk increments are
     maximally persistent; estimators should report H near 1. *)
  let rng = Sim_engine.Rng.create ~seed:22L in
  let level = ref 0. in
  let xs =
    Array.init 8192 (fun _ ->
        level := !level +. (Sim_engine.Rng.float rng -. 0.5);
        !level)
  in
  let h_vt = Hurst.estimate_variance_time xs in
  Alcotest.(check bool) "variance-time high" true (h_vt > 0.85)

let hurst_too_short () =
  Alcotest.check_raises "short"
    (Invalid_argument "Hurst.aggregated_variance: series too short") (fun () ->
      ignore (Hurst.aggregated_variance (Array.make 10 1.)))

(* ------------------------------------------------------------------ *)
(* FFT and periodogram *)

let naive_dft xs =
  let n = Array.length xs in
  Array.init n (fun k ->
      let re = ref 0. and im = ref 0. in
      for t = 0 to n - 1 do
        let ang = -2. *. Float.pi *. float_of_int (k * t) /. float_of_int n in
        re := !re +. (xs.(t) *. cos ang);
        im := !im +. (xs.(t) *. sin ang)
      done;
      { Complex.re = !re; im = !im })

let fft_matches_naive_dft () =
  let rng = Sim_engine.Rng.create ~seed:41L in
  let xs = Array.init 64 (fun _ -> Sim_engine.Rng.float rng -. 0.5) in
  let expected = naive_dft xs in
  let got = Fft.of_real xs in
  Fft.transform got;
  Array.iteri
    (fun k e ->
      Alcotest.(check (float 1e-6)) (Printf.sprintf "re[%d]" k) e.Complex.re
        got.(k).Complex.re;
      Alcotest.(check (float 1e-6)) (Printf.sprintf "im[%d]" k) e.Complex.im
        got.(k).Complex.im)
    expected

let fft_roundtrip () =
  let rng = Sim_engine.Rng.create ~seed:42L in
  let xs = Array.init 128 (fun _ -> Sim_engine.Rng.float rng) in
  let a = Fft.of_real xs in
  Fft.transform a;
  Fft.inverse a;
  Array.iteri
    (fun i x -> Alcotest.(check (float 1e-9)) "roundtrip" x a.(i).Complex.re)
    xs

let fft_pure_tone_peak () =
  (* A k=5 cosine concentrates all one-sided power at bin 5. *)
  let n = 256 in
  let xs =
    Array.init n (fun t -> cos (2. *. Float.pi *. 5. *. float_of_int t /. float_of_int n))
  in
  let spec = Fft.power_spectrum xs in
  let peak = ref 0 in
  Array.iteri (fun k p -> if p > spec.(!peak) then peak := k) spec;
  Alcotest.(check int) "peak at bin 5" 5 !peak

let fft_rejects_non_pow2 () =
  Alcotest.check_raises "non pow2"
    (Invalid_argument "Fft.transform: length not a power of two") (fun () ->
      Fft.transform (Array.make 12 Complex.zero))

let fft_next_pow2 () =
  Alcotest.(check int) "1" 1 (Fft.next_pow2 1);
  Alcotest.(check int) "5->8" 8 (Fft.next_pow2 5);
  Alcotest.(check int) "8->8" 8 (Fft.next_pow2 8)

let periodogram_iid_half () =
  let rng = Sim_engine.Rng.create ~seed:43L in
  let xs = Array.init 8192 (fun _ -> Sim_engine.Rng.float rng) in
  let h = Hurst.estimate_periodogram xs in
  Alcotest.(check bool) (Printf.sprintf "H=%.2f near 0.5" h) true (h > 0.3 && h < 0.7)

let periodogram_persistent_high () =
  let rng = Sim_engine.Rng.create ~seed:44L in
  let level = ref 0. in
  let xs =
    Array.init 8192 (fun _ ->
        level := !level +. (Sim_engine.Rng.float rng -. 0.5);
        !level)
  in
  let h = Hurst.estimate_periodogram xs in
  Alcotest.(check bool) (Printf.sprintf "H=%.2f high" h) true (h > 0.8)

(* ------------------------------------------------------------------ *)
(* Queueing theory *)

let queueing_mm1 () =
  check_close 1e-9 "L at rho=0.5" 1. (Queueing.mm1_mean_queue ~rho:0.5);
  check_close 1e-9 "W at rho=0.5" 2. (Queueing.mm1_mean_wait ~rho:0.5 ~service_time:1.);
  check_close 1e-9 "tail" 0.25 (Queueing.mm1_p_occupancy_exceeds ~rho:0.5 1)

let queueing_md1_half_of_mm1_wait () =
  (* Deterministic service halves the waiting (not sojourn) time. *)
  let rho = 0.7 and service = 0.01 in
  let mm1_waiting = Queueing.mm1_mean_wait ~rho ~service_time:service -. service in
  let md1_waiting = Queueing.md1_mean_wait ~rho ~service_time:service -. service in
  check_close 1e-9 "md1 = mm1/2" (mm1_waiting /. 2.) md1_waiting

let queueing_mg1_interpolates () =
  let rho = 0.6 in
  check_close 1e-9 "cv2=1 is mm1"
    (Queueing.mm1_mean_queue ~rho)
    (Queueing.mg1_mean_queue ~rho ~service_cv2:1.);
  check_close 1e-9 "cv2=0 is md1"
    (Queueing.md1_mean_queue ~rho)
    (Queueing.mg1_mean_queue ~rho ~service_cv2:0.)

let queueing_erlang_b () =
  (* Known value: 1 server, load 1 Erlang -> B = 0.5. *)
  check_close 1e-9 "c=1 a=1" 0.5 (Queueing.erlang_b ~servers:1 ~offered_load:1.);
  (* Monotone decreasing in servers. *)
  Alcotest.(check bool) "more servers less blocking" true
    (Queueing.erlang_b ~servers:5 ~offered_load:3.
    > Queueing.erlang_b ~servers:8 ~offered_load:3.)

let queueing_rejects_unstable () =
  Alcotest.check_raises "rho >= 1" (Invalid_argument "Queueing: rho outside [0, 1)")
    (fun () -> ignore (Queueing.mm1_mean_queue ~rho:1.))

(* ------------------------------------------------------------------ *)
(* Histogram *)

let histogram_basic () =
  let h = Histogram.create ~lo:0. ~hi:10. ~bins:5 in
  List.iter (Histogram.add h) [ -1.; 0.; 1.9; 2.; 9.9; 10.; 11. ];
  Alcotest.(check int) "count" 7 (Histogram.count h);
  Alcotest.(check int) "underflow" 1 (Histogram.underflow h);
  Alcotest.(check int) "overflow" 2 (Histogram.overflow h);
  Alcotest.(check (array int)) "bins" [| 2; 1; 0; 0; 1 |] (Histogram.bin_counts h);
  Alcotest.(check int) "edges" 6 (Array.length (Histogram.bin_edges h))

(* ------------------------------------------------------------------ *)
(* Batch means *)

let batch_means_iid_coverage () =
  (* iid uniform noise: the batch-means interval should bracket the true
     cov (std/mean of U(0,1) = (1/sqrt(12))/0.5 ~ 0.577). *)
  let rng = Sim_engine.Rng.create ~seed:61L in
  let xs = Array.init 5000 (fun _ -> Sim_engine.Rng.float rng) in
  let iv = Batch_means.cov_interval xs in
  let truth = 1. /. sqrt 12. /. 0.5 in
  Alcotest.(check bool)
    (Printf.sprintf "interval [%.3f +- %.3f] covers %.3f" iv.Batch_means.mean_of_batches
       iv.Batch_means.half_width_95 truth)
    true
    (Float.abs (iv.Batch_means.mean_of_batches -. truth) < 2. *. iv.Batch_means.half_width_95);
  Alcotest.(check bool) "half width sane" true
    (iv.Batch_means.half_width_95 > 0. && iv.Batch_means.half_width_95 < 0.1)

let batch_means_constant_series () =
  let iv = Batch_means.analyze ~f:(fun b -> b.(0)) (Array.make 100 7.) in
  Alcotest.(check (float 1e-9)) "point" 7. iv.Batch_means.point;
  Alcotest.(check (float 1e-9)) "zero width" 0. iv.Batch_means.half_width_95

let batch_means_validation () =
  Alcotest.check_raises "too short"
    (Invalid_argument "Batch_means.analyze: fewer than 2 observations per batch")
    (fun () -> ignore (Batch_means.cov_interval (Array.make 15 1.)));
  Alcotest.(check (float 1e-3)) "t for df=9" 2.262 (Batch_means.t_quantile_975 ~df:9);
  Alcotest.(check (float 1e-3)) "t asymptotic" 1.96 (Batch_means.t_quantile_975 ~df:200)

(* ------------------------------------------------------------------ *)
(* P2 online quantile *)

let p2_exact_for_few_samples () =
  let p = P2_quantile.create ~q:0.5 in
  List.iter (P2_quantile.add p) [ 3.; 1.; 2. ];
  check_close 1e-9 "median of 3" 2. (P2_quantile.quantile p)

let p2_matches_exact_median () =
  let rng = Sim_engine.Rng.create ~seed:55L in
  let p = P2_quantile.create ~q:0.5 in
  let xs = Array.init 50_000 (fun _ -> Sim_engine.Rng.gaussian rng ~mean:10. ~std:2.) in
  Array.iter (P2_quantile.add p) xs;
  let exact = Summary.median xs in
  check_close 0.05 "median" exact (P2_quantile.quantile p)

let p2_matches_exact_p99 () =
  let rng = Sim_engine.Rng.create ~seed:56L in
  let p = P2_quantile.create ~q:0.99 in
  let xs = Array.init 100_000 (fun _ -> Sim_engine.Rng.exponential rng ~mean:1.) in
  Array.iter (P2_quantile.add p) xs;
  let exact = Summary.quantile xs 0.99 in
  (* Exponential p99 = 4.6; accept a few percent of estimator error. *)
  Alcotest.(check bool)
    (Printf.sprintf "p99 est %.3f vs exact %.3f" (P2_quantile.quantile p) exact)
    true
    (Float.abs (P2_quantile.quantile p -. exact) /. exact < 0.05)

let p2_rejects_bad_q () =
  Alcotest.check_raises "q" (Invalid_argument "P2_quantile.create: q outside (0,1)")
    (fun () -> ignore (P2_quantile.create ~q:1.))

(* ------------------------------------------------------------------ *)
(* Dispersion *)

let idc_poisson_near_one () =
  let rng = Sim_engine.Rng.create ~seed:30L in
  let b = Binned.create ~origin:0. ~width:0.1 () in
  let t = ref 0. in
  while !t < 1000. do
    t := !t +. Sim_engine.Rng.exponential rng ~mean:0.01;
    if !t < 1000. then Binned.record b !t
  done;
  let counts = Binned.counts b ~upto:1000. in
  let idc1 = Dispersion.idc counts 1 in
  let idc10 = Dispersion.idc counts 10 in
  Alcotest.(check bool) "idc(1) ~ 1" true (idc1 > 0.8 && idc1 < 1.2);
  Alcotest.(check bool) "idc(10) ~ 1" true (idc10 > 0.7 && idc10 < 1.3)

let idc_deterministic_below_one () =
  let counts = Array.make 100 5. in
  let idc = Dispersion.idc counts 1 in
  check_float "no variance" 0. idc

let idc_profile_skips_bad () =
  let counts = Array.make 8 1. in
  let profile = Dispersion.idc_profile counts [ 1; 2; 100 ] in
  (* One row per requested size: unsupported scales surface as [None]
     instead of silently disappearing from the profile. *)
  Alcotest.(check int) "one row per requested size" 3 (List.length profile);
  (match profile with
  | [ (1, Some a); (2, Some b); (100, None) ] ->
      check_float "idc(1) computed" 0. a;
      check_float "idc(2) computed" 0. b
  | _ -> Alcotest.fail "unexpected profile shape");
  let zero = Dispersion.idc_profile (Array.make 8 0.) [ 1; 2 ] in
  Alcotest.(check bool) "zero-mean scales are None" true
    (List.for_all (fun (_, v) -> v = None) zero)

let binned_total_property =
  QCheck.Test.make ~name:"binned total = sum of all bins" ~count:200
    QCheck.(small_list (float_bound_inclusive 100.))
    (fun times ->
      let b = Binned.create ~origin:0. ~width:3. () in
      List.iter (Binned.record b) times;
      let complete = Binned.counts b ~upto:200. in
      (* upto beyond every event: all bins complete. *)
      int_of_float (Array.fold_left ( +. ) 0. complete) = Binned.total b)

let quantile_order_property =
  QCheck.Test.make ~name:"quantiles are monotone in q" ~count:200
    QCheck.(list_of_size (Gen.int_range 2 40) (float_bound_exclusive 1000.))
    (fun xs ->
      let arr = Array.of_list xs in
      Summary.quantile arr 0.2 <= Summary.quantile arr 0.5
      && Summary.quantile arr 0.5 <= Summary.quantile arr 0.9)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "stats.welford",
      [
        Alcotest.test_case "matches direct computation" `Quick welford_matches_direct;
        Alcotest.test_case "empty and single" `Quick welford_empty_and_single;
        Alcotest.test_case "cov" `Quick welford_cov;
        Alcotest.test_case "population variance" `Quick welford_population_variance;
      ]
      @ qsuite [ welford_merge_property ] );
    ("stats.properties", qsuite [ binned_total_property; quantile_order_property ]);
    ( "stats.summary",
      [
        Alcotest.test_case "basic" `Quick summary_basic;
        Alcotest.test_case "empty rejected" `Quick summary_empty;
        Alcotest.test_case "quantile interpolation" `Quick quantile_interpolation;
        Alcotest.test_case "quantile sorts a copy" `Quick quantile_unsorted_input;
      ] );
    ( "stats.binned",
      [
        Alcotest.test_case "counts with gaps" `Quick binned_counts;
        Alcotest.test_case "partial bin excluded" `Quick binned_partial_bin_excluded;
        Alcotest.test_case "record_many" `Quick binned_record_many;
        Alcotest.test_case "poisson cov law" `Quick binned_poisson_cov_property;
      ] );
    ( "stats.series",
      [
        Alcotest.test_case "basic" `Quick series_basic;
        Alcotest.test_case "monotone time" `Quick series_rejects_backwards;
        Alcotest.test_case "zero-order-hold resample" `Quick series_resample_zoh;
        Alcotest.test_case "between" `Quick series_between;
      ] );
    ( "stats.regression",
      [
        Alcotest.test_case "exact line" `Quick regression_exact_line;
        Alcotest.test_case "log-log power law" `Quick regression_loglog;
        Alcotest.test_case "errors" `Quick regression_errors;
      ] );
    ( "stats.autocorr",
      [
        Alcotest.test_case "constant series" `Quick autocorr_constant;
        Alcotest.test_case "alternating series" `Quick autocorr_alternating;
        Alcotest.test_case "iid near zero" `Quick autocorr_iid_near_zero;
      ] );
    ( "stats.correlation",
      [
        Alcotest.test_case "perfect correlation" `Quick pearson_perfect;
        Alcotest.test_case "constant series" `Quick pearson_constant_is_zero;
        Alcotest.test_case "independent near zero" `Quick pearson_independent_near_zero;
        Alcotest.test_case "errors" `Quick pearson_errors;
        Alcotest.test_case "mean pairwise" `Quick mean_pairwise_sync;
        Alcotest.test_case "cross-correlation lag" `Quick cross_correlation_lag;
      ] );
    ( "stats.hurst",
      [
        Alcotest.test_case "iid noise ~ 0.5" `Slow hurst_iid_half;
        Alcotest.test_case "persistent series high" `Slow hurst_trending_high;
        Alcotest.test_case "too short rejected" `Quick hurst_too_short;
      ] );
    ( "stats.fft",
      [
        Alcotest.test_case "matches naive dft" `Quick fft_matches_naive_dft;
        Alcotest.test_case "roundtrip" `Quick fft_roundtrip;
        Alcotest.test_case "pure tone peak" `Quick fft_pure_tone_peak;
        Alcotest.test_case "rejects non-power-of-two" `Quick fft_rejects_non_pow2;
        Alcotest.test_case "next_pow2" `Quick fft_next_pow2;
        Alcotest.test_case "periodogram iid ~ 0.5" `Slow periodogram_iid_half;
        Alcotest.test_case "periodogram persistent high" `Slow periodogram_persistent_high;
      ] );
    ( "stats.queueing",
      [
        Alcotest.test_case "mm1 closed forms" `Quick queueing_mm1;
        Alcotest.test_case "md1 halves waiting" `Quick queueing_md1_half_of_mm1_wait;
        Alcotest.test_case "mg1 interpolates" `Quick queueing_mg1_interpolates;
        Alcotest.test_case "erlang b" `Quick queueing_erlang_b;
        Alcotest.test_case "rejects unstable" `Quick queueing_rejects_unstable;
      ] );
    ( "stats.histogram", [ Alcotest.test_case "basic" `Quick histogram_basic ] );
    ( "stats.batch_means",
      [
        Alcotest.test_case "iid coverage" `Quick batch_means_iid_coverage;
        Alcotest.test_case "constant series" `Quick batch_means_constant_series;
        Alcotest.test_case "validation and t-table" `Quick batch_means_validation;
      ] );
    ( "stats.p2",
      [
        Alcotest.test_case "exact for few samples" `Quick p2_exact_for_few_samples;
        Alcotest.test_case "median of gaussian" `Slow p2_matches_exact_median;
        Alcotest.test_case "p99 of exponential" `Slow p2_matches_exact_p99;
        Alcotest.test_case "rejects bad q" `Quick p2_rejects_bad_q;
      ] );
    ( "stats.dispersion",
      [
        Alcotest.test_case "poisson idc ~ 1" `Quick idc_poisson_near_one;
        Alcotest.test_case "deterministic idc 0" `Quick idc_deterministic_below_one;
        Alcotest.test_case "profile keeps bad sizes as None" `Quick
          idc_profile_skips_bad;
      ] );
  ]
