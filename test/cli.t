The table1 subcommand prints the reconstructed Table 1 deterministically.

  $ ../bin/main.exe table1
  Table 1: simulation parameters
  
  client link bandwidth (mu_c)        10 Mbps
  client link delay (tau_c)           250 ms
  bottleneck link bandwidth (mu_s)    5 Mbps
  bottleneck link delay (tau_s)       250 ms
  TCP max advertised window           20 packets
  gateway buffer size (B)             50 packets
  packet size                         1500 bytes
  avg packet intergeneration time     0.1 s
  total test time                     200 s
  TCP Vegas alpha / beta / gamma      1 / 3 / 1
  RED min_th / max_th                 10 / 40 packets
  RED max_p / w_q                     0.02 / 0.002
  

Unknown figures are rejected with a helpful message.

  $ ../bin/main.exe fig 99
  no such figure: 99 (valid: 2-13)
  [1]

Unknown scenario names are rejected by the option parser.

  $ ../bin/main.exe run --scenario bogus -n 2 2>&1 | head -1
  burstsim: option '--scenario': unknown scenario "bogus"

CSV export writes the documented header.

  $ ../bin/main.exe export --format csv --out results.csv --fast --clients 2 --duration 6 2>/dev/null
  $ head -1 results.csv
  scenario,clients,cov,analytic_cov,cov_inflation_pct,offered,delivered,segments_sent,gateway_drops,loss_pct,timeouts,fast_retransmits,retransmits,dup_acks,timeout_dupack_ratio,jain_fairness,delay_mean_s,delay_p99_s
  $ grep -c '^' results.csv
  7

JSON export parses back (validated here with the bundled parser via the
trace subcommand's deterministic run line).

  $ ../bin/main.exe run --scenario udp -n 2 --duration 30 2>/dev/null | head -1 | cut -d' ' -f1
  UDP

--telemetry writes a report that report-check validates; table1 runs no
simulation, so the NDJSON trace stays empty.

  $ ../bin/main.exe table1 --fast --telemetry=report.json --trace-out=trace.ndjson > /dev/null
  wrote telemetry report to report.json
  $ ../bin/main.exe report-check report.json
  telemetry report ok
  $ wc -l < trace.ndjson
  0

A simulated run fills the trace with packet events (the discriminator
field leads every line) and its report validates too.

  $ ../bin/main.exe run --scenario reno -n 2 --duration 6 --fast --telemetry=run-report.json --trace-out=run-trace.ndjson > /dev/null
  wrote telemetry report to run-report.json
  $ ../bin/main.exe report-check run-report.json
  telemetry report ok
  $ head -c 17 run-trace.ndjson
  {"event":"packet"

Corrupt reports are rejected.

  $ echo '{"label":"x"}' > broken.json
  $ ../bin/main.exe report-check broken.json
  broken.json: invalid telemetry report: missing fields: runs, events_fired, event_queue_hwm, gateway_queue_hwm, events_per_sec, phases, metrics
  [1]

--kind=alloc checks the allocation-budget sweep schema: a passing row
is accepted, a row over its own words/event budget is rejected, and a
leak is rejected.

  $ cat > alloc.json <<'EOF'
  > {"clients":50,"duration_s":30.0,"reps":3,
  >  "baseline_minor_words_per_event":30.48,"baseline_events_per_sec":1311337.0,
  >  "rows":[{"scenario":"Reno","clients":50,"events":100,"wall_s":0.1,
  >           "events_per_sec":1000.0,"minor_words_per_event":5.8,
  >           "promoted_words_per_event":0.02,"major_collections":0,
  >           "threshold_minor_words_per_event":6.0,"min_events_per_sec":null,
  >           "leak_free":true}]}
  > EOF
  $ ../bin/main.exe report-check --kind=alloc alloc.json
  alloc report ok
  $ sed 's/"minor_words_per_event":5.8/"minor_words_per_event":6.5/' alloc.json > alloc-over.json
  $ ../bin/main.exe report-check --kind=alloc alloc-over.json
  alloc-over.json: invalid alloc report: Reno: minor_words_per_event 6.5000 exceeds threshold 6
  [1]
  $ sed 's/"leak_free":true/"leak_free":false/' alloc.json > alloc-leak.json
  $ ../bin/main.exe report-check --kind=alloc alloc-leak.json
  alloc-leak.json: invalid alloc report: Reno: leak_free is false
  [1]

--kind=flows checks the flow-scaling sweep schema: a passing row is
accepted, a grown slab is rejected, and a converged row outside the
fluid ratio band is rejected (a non-converged row is not gated on it).

  $ cat > flows.json <<'EOF'
  > {"per_flow_capacity_pps":16.0,"base_rtt_s":0.2,
  >  "bytes_per_flow_budget":512,"minor_words_per_event_budget":8.0,
  >  "min_events_per_sec":300000.0,
  >  "throughput_ratio_min":0.8,"throughput_ratio_max":1.05,
  >  "queue_ratio_min":0.35,"queue_ratio_max":1.5,
  >  "rows":[{"flows":1000,"duration_s":10.0,"fluid_gated":true,
  >           "events":1000000,"wall_s":1.0,"events_per_sec":1000000.0,
  >           "minor_words_per_event":4.0,"promoted_words_per_event":0.02,
  >           "major_collections":0,"bytes_per_flow":496,
  >           "flow_footprint_bytes":496000,"flow_table_growths":0,
  >           "queue_growths":0,"queue_capacity":52064,"queue_hwm":5000,
  >           "wheel_parked":9000,"delivered":120000,
  >           "measured_queue":2500.0,"fluid_queue":4774.0,
  >           "queue_ratio":0.52,"measured_throughput_pps":16000.0,
  >           "fluid_throughput_pps":16000.0,"throughput_ratio":1.0,
  >           "leak_free":true}]}
  > EOF
  $ ../bin/main.exe report-check --kind=flows flows.json
  flows report ok
  $ sed 's/"flow_table_growths":0/"flow_table_growths":2/' flows.json > flows-grew.json
  $ ../bin/main.exe report-check --kind=flows flows-grew.json
  flows-grew.json: invalid flows report: N=1000: slabs grew (2 flow-table, 0 event-queue)
  [1]
  $ sed 's/"throughput_ratio":1.0/"throughput_ratio":0.5/' flows.json > flows-slow.json
  $ ../bin/main.exe report-check --kind=flows flows-slow.json
  flows-slow.json: invalid flows report: N=1000: throughput ratio 0.5 outside [0.8, 1.05]
  [1]
  $ sed 's/"fluid_gated":true/"fluid_gated":false/' flows-slow.json > flows-ungated.json
  $ ../bin/main.exe report-check --kind=flows flows-ungated.json
  flows report ok

--jobs rejects zero and negative counts at parse time.

  $ ../bin/main.exe fig 2 -j 0 2>&1 | head -1
  burstsim: option '-j': JOBS must be at least 1
  $ ../bin/main.exe fig 2 --jobs=-3 2>&1 | head -1
  burstsim: option '--jobs': JOBS must be at least 1

Event tracing composes with parallel execution: workers record into
per-domain flight-recorder lanes that are decoded at merge time, so the
NDJSON written under -j 2 is byte-identical to the sequential stream.

  $ ../bin/main.exe fig 2 --duration 6 --clients 2 --trace-out seq-trace.ndjson > /dev/null 2>&1
  $ ../bin/main.exe fig 2 --duration 6 --clients 2 -j 2 --trace-out j2-trace.ndjson > /dev/null 2>&1
  $ test -s seq-trace.ndjson && cmp seq-trace.ndjson j2-trace.ndjson && echo identical
  identical

-j 1 is the sequential path, byte for byte: the same sweep with and
without the flag produces identical figure output.

  $ ../bin/main.exe fig 2 --duration 6 --clients 2,3 2> /dev/null > seq.txt
  $ ../bin/main.exe fig 2 --duration 6 --clients 2,3 -j 1 2> /dev/null > j1.txt
  $ cmp seq.txt j1.txt && echo identical
  identical

And a 2-domain run is bit-identical to the sequential one.

  $ ../bin/main.exe fig 2 --duration 6 --clients 2,3 -j 2 2> /dev/null > j2.txt
  $ cmp seq.txt j2.txt && echo identical
  identical

--record-out captures a binary flight recording that the trace
subcommands can query. stats summarizes per segment; decode replays
parity events as the same NDJSON the live tracer writes.

  $ ../bin/main.exe run --scenario reno -n 2 --duration 6 --trace-out live.ndjson --record-out rec.bin > /dev/null 2>&1
  $ ../bin/main.exe trace decode rec.bin --out decoded.ndjson
  $ grep '"event":"packet"' decoded.ndjson > decoded-parity.ndjson
  $ cmp live.ndjson decoded-parity.ndjson && echo parity
  parity
  $ ../bin/main.exe trace stats rec.bin | head -3
  segment "Reno n=2"
    lane 0: 261 recorded, 261 retained, 0 dropped
    ticks 0.000000 .. 6.000000 s (261 records)
  $ ../bin/main.exe trace grep rec.bin --kind packet_arrival --flow 0 | head -1 | cut -c1-17
  {"event":"packet"
  $ ../bin/main.exe trace spans rec.bin | head -1
  packet_sojourn     n=95       p50=0.259709s p99=0.278411s
  $ ../bin/main.exe trace grep rec.bin --kind bogus_kind
  burstsim: unknown record kind "bogus_kind"
  [1]

A 4-domain sweep's recording decodes byte-identically to the
sequential one: lanes merge deterministically by (tick, lane, seq).

  $ ../bin/main.exe fig 2 --duration 6 --clients 2,3 --record-out rec-j1.bin > /dev/null 2>&1
  $ ../bin/main.exe fig 2 --duration 6 --clients 2,3 -j 4 --record-out rec-j4.bin > /dev/null 2>&1
  $ ../bin/main.exe trace decode rec-j1.bin --out dec-j1.ndjson
  $ ../bin/main.exe trace decode rec-j4.bin --out dec-j4.ndjson
  $ test -s dec-j1.ndjson && cmp dec-j1.ndjson dec-j4.ndjson && echo identical
  identical

--shards K parallelises one run across K domains with the sharded
conservative-PDES engine; the printed metrics and the merged NDJSON
trace are byte-identical at every shard count.

  $ ../bin/main.exe run --scenario reno-red -n 4 --duration 6 --shards 1 --trace-out shard1.ndjson > shard1.txt 2>&1
  $ ../bin/main.exe run --scenario reno-red -n 4 --duration 6 --shards 4 --trace-out shard4.ndjson > shard4.txt 2>&1
  $ cmp shard1.txt shard4.txt && test -s shard1.ndjson && cmp shard1.ndjson shard4.ndjson && echo identical
  identical

--record-out hooks the classic engine's topology and is rejected under
--shards (use --trace-out instead); a negative shard count is rejected
outright.

  $ ../bin/main.exe run --scenario reno -n 2 --duration 6 --shards 2 --record-out nope.bin
  burstsim: --record-out needs the classic single-domain engine and cannot be combined with --shards; drop --shards, or use --trace-out (its NDJSON stream is merged deterministically across shard domains)
  [1]
  $ ../bin/main.exe run --shards=-1
  burstsim: --shards must be >= 0 (got -1)
  [1]

--kind=parallel validates BENCH_parallel.json: the sweep and single-run
determinism flags must both hold, and a null single-run speedup is only
legal on machines with fewer than 4 domains.

  $ cat > par.json <<'EOF'
  > {"scenario":"Reno","clients":[10,20],"replicates":4,"duration_s":10.0,
  >  "domains":1,"sequential_wall_s":2.0,"parallel_wall_s":1.9,"speedup":null,
  >  "deterministic":true,
  >  "single_run":{"scenario":"Reno/RED","clients":10000,"duration_s":2.0,
  >    "window_s":0.05,"available_domains":1,"min_speedup":3.0,
  >    "rows":[{"shards":1,"wall_s":4.0},{"shards":4,"wall_s":4.4}],
  >    "speedup":null,"sharded_deterministic":true}}
  > EOF
  $ ../bin/main.exe report-check --kind=parallel par.json
  parallel report ok
  $ sed 's/"sharded_deterministic":true/"sharded_deterministic":false/' par.json > par-div.json
  $ ../bin/main.exe report-check --kind=parallel par-div.json
  par-div.json: invalid parallel report: single_run: sharded_deterministic is false (1-shard and K-shard runs diverged)
  [1]
  $ sed 's/"available_domains":1/"available_domains":8/' par.json > par-null.json
  $ ../bin/main.exe report-check --kind=parallel par-null.json
  par-null.json: invalid parallel report: single_run: speedup is null despite 8 available domains
  [1]

--kind=bench-telemetry validates the recorder-overhead benchmark
report: budgets carried by the file itself are enforced.

  $ cat > bt.json <<'EOF'
  > {"scenario":"Reno","clients":50,"events":60000,
  >  "baseline_events_per_sec":3e6,"probed_events_per_sec":2.9e6,
  >  "recorded_events_per_sec":2.8e6,"probed_run_s":0.02,"recorded_run_s":0.021,
  >  "probe_overhead_pct":1.0,"probe_overhead_budget_pct":15.0,
  >  "recorder_overhead_pct":2.0,"recorder_overhead_budget_pct":8.0,
  >  "recorder_minor_words_per_event_delta":0.01,"recorder_words_budget":0.05,
  >  "recorder_records":6509,"recorder_dropped":0}
  > EOF
  $ ../bin/main.exe report-check --kind=bench-telemetry bt.json
  bench-telemetry report ok
  $ sed 's/"recorder_overhead_pct":2.0/"recorder_overhead_pct":9.5/' bt.json > bt-over.json
  $ ../bin/main.exe report-check --kind=bench-telemetry bt-over.json
  bt-over.json: invalid bench-telemetry report: recorder overhead pct 9.5000 exceeds budget 8
  [1]

The burst subcommand replays a trace offline through the streaming
multi-timescale aggregator. A binary recording (whose queue-depth words
also feed the oscillation detector), the NDJSON twin of the same run,
and NDJSON on stdin all summarize the same arrival process.

  $ ../bin/main.exe burst rec.bin --width 0.5
  burst: 98 events in 11 bins of 0.5s across 3 timescales
       scale_s   blocks       mean        cov        idc
           0.5       11      8.364     1.4617    17.8696
             1        5     12.400     0.9837    12.0000
             2        2     15.000     0.8485    10.8000
    logscale (octave, log2 energy): 1:7.09
    osc: OSCILLATING (rel amplitude 1.020, 11 crossings, 0.969 Hz over 98 samples, mean 2.90)
  
  $ ../bin/main.exe burst live.ndjson --width 0.5 | head -1
  burst: 98 events in 11 bins of 0.5s across 3 timescales
  $ cat live.ndjson | ../bin/main.exe burst - --width 0.5 | head -1
  burst: 98 events in 11 bins of 0.5s across 3 timescales
  $ ../bin/main.exe burst rec.bin --width 0.5 --json | cut -c1-44
  {"base_width_s":0.5,"bins":11,"events":98,"s
  $ ../bin/main.exe burst missing.bin
  burstsim: cannot read missing.bin: No such file or directory
  [1]

--burst-out captures the same summaries at run time, embedded in the
run's metrics JSON.

  $ ../bin/main.exe run --scenario reno -n 2 --duration 6 --burst-out burst-run.json > /dev/null 2> burst-run.err
  $ tail -1 burst-run.err
  wrote burst summaries to burst-run.json
  $ grep -c '"burst":{"base_width_s"' burst-run.json
  1

--kind=burst validates the burstiness-observability benchmark report:
the words/event and c.o.v. equivalence budgets carried by the file are
enforced, and each RED sweep row's detector verdict must match its
predicted side of the critical averaging gain.

  $ cat > burst-bench.json <<'EOF'
  > {"scenario":"Reno","clients":50,"reps":3,"events":92322,
  >  "probed_run_s":0.05,"burst_run_s":0.052,"burst_overhead_pct":4.5,
  >  "burst_minor_words_per_event_delta":-0.004,"burst_words_budget":0.05,
  >  "cov_offline":0.241,"cov_streaming":0.241,
  >  "cov_abs_err":0.0,"cov_tolerance":1e-6,
  >  "red_sweep":{"rows":[
  >    {"w_q":0.149,"side":"unstable","rel_amplitude":0.34,
  >     "frequency_hz":1.9,"crossings":227,"oscillating":true},
  >    {"w_q":0.000149,"side":"stable","rel_amplitude":0.03,
  >     "frequency_hz":0.5,"crossings":56,"oscillating":false}]}}
  > EOF
  $ ../bin/main.exe report-check --kind=burst burst-bench.json
  burst report ok
  $ sed 's/"oscillating":false/"oscillating":true/' burst-bench.json > burst-contradict.json
  $ ../bin/main.exe report-check --kind=burst burst-contradict.json
  burst-contradict.json: invalid burst report: w_q=0.000149: detector verdict oscillating=true contradicts side "stable"
  [1]
  $ sed 's/"burst_minor_words_per_event_delta":-0.004/"burst_minor_words_per_event_delta":0.2/' burst-bench.json > burst-alloc.json
  $ ../bin/main.exe report-check --kind=burst burst-alloc.json
  burst-alloc.json: invalid burst report: burst minor words/event delta 0.2 exceeds budget 0.05
  [1]

--background M attaches the hybrid fluid/packet engine: M mean-field
Reno background flows drive the bottleneck through one coupled ODE and
the run's metrics carry their summary. --foreground is an alias for
--clients named for hybrid runs, and the coupling composes with
--shards bit-identically (the quantum tick lives on the hub domain).

  $ ../bin/main.exe run --scenario reno-red --foreground 3 --duration 12 --background 200 --json 2>/dev/null | grep -c '"hybrid":{"background":200,'
  1
  $ ../bin/main.exe run --scenario reno-red -n 3 --duration 12 --background 200 --shards 1 > hyb1.txt 2>&1
  $ ../bin/main.exe run --scenario reno-red -n 3 --duration 12 --background 200 --shards 4 > hyb4.txt 2>&1
  $ cmp hyb1.txt hyb4.txt && echo identical
  identical
  $ ../bin/main.exe run --background=-1
  burstsim: --background must be >= 0 (got -1)
  [1]

--kind=hybrid validates BENCH_hybrid.json: the hybrid-vs-packet
validation rows must land inside the bands the file itself carries,
the converged million-flow row must be leak-free with zero slab growth
and (outside smoke mode) a work ratio above the committed floor, and
the mean-field RED stability sweep reuses the burst sweep's
verdict-vs-side gate.

  $ cat > hyb.json <<'EOF'
  > {"scenario":"Reno/RED","foreground":50,
  >  "throughput_ratio_min":0.8,"throughput_ratio_max":1.25,
  >  "queue_ratio_min":0.5,"queue_ratio_max":2.0,
  >  "loss_abs_tol":0.025,"work_ratio_min":10.0,
  >  "validation":[{"flows":1000,"background":950,
  >    "packet_throughput_pps":14.6,"hybrid_throughput_pps":17.4,
  >    "throughput_ratio":1.19,"packet_queue_mean":1693.0,
  >    "hybrid_queue_mean":2566.0,"queue_ratio":1.52,
  >    "packet_loss_rate":0.041,"hybrid_loss_rate":0.058,
  >    "loss_abs_err":0.017,"event_ratio":17.0}],
  >  "converged":{"flows":1000000,"foreground":100,"background":999900,
  >    "duration_s":10.0,"events":170310,"wall_s":1.9,
  >    "events_per_sec":89000.0,"bg_window_mean":7.1,
  >    "bg_queue_mean":21237.0,"slowdown_mean":3245.0,
  >    "flow_table_growths":0,"queue_growths":0,
  >    "leak_free":true,"smoke":false,"work_ratio":1200.0},
  >  "stability_sweep":{"wq_critical":7.5e-06,"rows":[
  >    {"w_q":0.00075,"side":"unstable","rel_amplitude":0.4,
  >     "frequency_hz":1.4,"crossings":101,"oscillating":true},
  >    {"w_q":7.5e-07,"side":"stable","rel_amplitude":0.0,
  >     "frequency_hz":0.0,"crossings":0,"oscillating":false}]}}
  > EOF
  $ ../bin/main.exe report-check --kind=hybrid hyb.json
  hybrid report ok
  $ sed 's/"throughput_ratio":1.19/"throughput_ratio":1.6/' hyb.json > hyb-off.json
  $ ../bin/main.exe report-check --kind=hybrid hyb-off.json
  hyb-off.json: invalid hybrid report: N=1000: foreground throughput ratio 1.6 outside [0.8, 1.25]
  [1]
  $ sed 's/"work_ratio":1200.0/"work_ratio":null/' hyb.json > hyb-null.json
  $ ../bin/main.exe report-check --kind=hybrid hyb-null.json
  hyb-null.json: invalid hybrid report: converged: work_ratio is null outside smoke mode
  [1]
