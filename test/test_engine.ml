(* Tests for the discrete-event engine: Time, Heap, Event_queue, Scheduler,
   Rng. *)

open Sim_engine

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Time *)

let time_roundtrip () =
  check_float "sec roundtrip" 1.25 (Time.to_sec (Time.of_sec 1.25));
  check_float "ms" 0.002 (Time.to_sec (Time.of_ms 2.));
  check_float "us" 3e-6 (Time.to_sec (Time.of_us 3.))

let time_arithmetic () =
  let a = Time.of_sec 2. and b = Time.of_sec 0.5 in
  check_float "add" 2.5 (Time.to_sec (Time.add a b));
  check_float "diff" 1.5 (Time.to_sec (Time.diff a b));
  check_float "mul" 1.0 (Time.to_sec (Time.mul b 2.));
  Alcotest.(check bool) "lt" true Time.(b < a);
  Alcotest.(check bool) "ge" true Time.(a >= a);
  check_float "min" 0.5 (Time.to_sec (Time.min a b));
  check_float "max" 2.0 (Time.to_sec (Time.max a b))

let time_invalid () =
  Alcotest.check_raises "negative" (Invalid_argument "Time.of_sec: negative or non-finite")
    (fun () -> ignore (Time.of_sec (-1.)));
  Alcotest.check_raises "nan" (Invalid_argument "Time.of_sec: negative or non-finite")
    (fun () -> ignore (Time.of_sec Float.nan));
  Alcotest.check_raises "diff negative" (Invalid_argument "Time.diff: negative result")
    (fun () -> ignore (Time.diff (Time.of_sec 1.) (Time.of_sec 2.)))

(* ------------------------------------------------------------------ *)
(* Heap *)

module Int_heap = Heap.Make (Int)

let heap_basic () =
  let h = Int_heap.create () in
  Alcotest.(check bool) "empty" true (Int_heap.is_empty h);
  List.iter (Int_heap.push h) [ 5; 3; 8; 1; 9; 2 ];
  Alcotest.(check int) "length" 6 (Int_heap.length h);
  Alcotest.(check (option int)) "peek" (Some 1) (Int_heap.peek h);
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 5; 8; 9 ] (Int_heap.to_sorted_list h);
  Alcotest.(check int) "non-destructive" 6 (Int_heap.length h);
  Alcotest.(check (option int)) "pop" (Some 1) (Int_heap.pop h);
  Alcotest.(check (option int)) "pop2" (Some 2) (Int_heap.pop h);
  Int_heap.clear h;
  Alcotest.(check (option int)) "cleared" None (Int_heap.pop h)

let heap_pop_exn_empty () =
  let h = Int_heap.create () in
  Alcotest.check_raises "pop_exn" (Invalid_argument "Heap.pop_exn: empty heap")
    (fun () -> ignore (Int_heap.pop_exn h))

let heap_sort_property =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Int_heap.create () in
      List.iter (Int_heap.push h) xs;
      Int_heap.to_sorted_list h = List.sort Int.compare xs)

let heap_interleaved_property =
  QCheck.Test.make ~name:"heap min under interleaved push/pop" ~count:200
    QCheck.(list (pair bool small_int))
    (fun ops ->
      let h = Int_heap.create () in
      let model = ref [] in
      List.for_all
        (fun (is_push, v) ->
          if is_push then begin
            Int_heap.push h v;
            model := v :: !model;
            true
          end
          else begin
            let expected =
              match List.sort Int.compare !model with
              | [] -> None
              | m :: _ ->
                  model := List.tl (List.sort Int.compare !model);
                  Some m
            in
            Int_heap.pop h = expected
          end)
        ops)

(* ------------------------------------------------------------------ *)
(* Event_queue *)

let eq_fires_in_time_order () =
  let q = Event_queue.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  ignore (Event_queue.schedule q (Time.of_sec 3.) (note "c"));
  ignore (Event_queue.schedule q (Time.of_sec 1.) (note "a"));
  ignore (Event_queue.schedule q (Time.of_sec 2.) (note "b"));
  let rec drain () =
    match Event_queue.pop q with
    | Some (_, action) ->
        action ();
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log)

let eq_fifo_within_timestamp () =
  let q = Event_queue.create () in
  let log = ref [] in
  let t = Time.of_sec 1. in
  List.iter
    (fun i -> ignore (Event_queue.schedule q t (fun () -> log := i :: !log)))
    [ 1; 2; 3; 4 ];
  let rec drain () =
    match Event_queue.pop q with
    | Some (_, action) ->
        action ();
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4 ] (List.rev !log)

let eq_cancel () =
  let q = Event_queue.create () in
  let fired = ref false in
  let h = Event_queue.schedule q (Time.of_sec 1.) (fun () -> fired := true) in
  Alcotest.(check bool) "pending" true (Event_queue.is_pending q h);
  Event_queue.cancel q h;
  Alcotest.(check bool) "not pending" false (Event_queue.is_pending q h);
  Alcotest.(check int) "live count" 0 (Event_queue.length q);
  Alcotest.(check bool) "empty pop" true (Event_queue.pop q = None);
  Alcotest.(check bool) "never fired" false !fired;
  (* double cancel is a no-op *)
  Event_queue.cancel q h;
  Alcotest.(check int) "still 0" 0 (Event_queue.length q)

let eq_high_water_mark () =
  let q = Event_queue.create () in
  Alcotest.(check int) "starts at 0" 0 (Event_queue.high_water_mark q);
  ignore (Event_queue.schedule q (Time.of_sec 1.) ignore);
  let h2 = Event_queue.schedule q (Time.of_sec 2.) ignore in
  ignore (Event_queue.schedule q (Time.of_sec 3.) ignore);
  Alcotest.(check int) "tracks peak" 3 (Event_queue.high_water_mark q);
  (* Pop the t=1 event and cancel the t=2 one: live drops to 1. *)
  ignore (Event_queue.pop q);
  Event_queue.cancel q h2;
  Alcotest.(check int) "peak survives drain" 3 (Event_queue.high_water_mark q);
  (* Refilling below the old peak leaves it; exceeding it moves it. *)
  ignore (Event_queue.schedule q (Time.of_sec 4.) ignore);
  ignore (Event_queue.schedule q (Time.of_sec 5.) ignore);
  Alcotest.(check int) "below peak: unchanged" 3 (Event_queue.high_water_mark q);
  ignore (Event_queue.schedule q (Time.of_sec 6.) ignore);
  Alcotest.(check int) "new peak" 4 (Event_queue.high_water_mark q)

let eq_next_time_skips_cancelled () =
  let q = Event_queue.create () in
  let h1 = Event_queue.schedule q (Time.of_sec 1.) ignore in
  ignore (Event_queue.schedule q (Time.of_sec 2.) ignore);
  Event_queue.cancel q h1;
  match Event_queue.next_time q with
  | Some t -> check_float "next is 2" 2. (Time.to_sec t)
  | None -> Alcotest.fail "expected an event"

(* ------------------------------------------------------------------ *)
(* Scheduler *)

let sched_runs_and_advances_clock () =
  let s = Scheduler.create () in
  let seen = ref [] in
  ignore (Scheduler.at s (Time.of_sec 1.) (fun () -> seen := Time.to_sec (Scheduler.now s) :: !seen));
  ignore (Scheduler.after s (Time.of_sec 0.5) (fun () -> seen := Time.to_sec (Scheduler.now s) :: !seen));
  Scheduler.run s;
  Alcotest.(check (list (float 1e-9))) "clock at fire times" [ 0.5; 1. ] (List.rev !seen);
  Alcotest.(check int) "fired" 2 (Scheduler.events_processed s)

let sched_until_bounds_and_advances () =
  let s = Scheduler.create () in
  let fired = ref 0 in
  ignore (Scheduler.at s (Time.of_sec 1.) (fun () -> incr fired));
  ignore (Scheduler.at s (Time.of_sec 5.) (fun () -> incr fired));
  Scheduler.run ~until:(Time.of_sec 2.) s;
  Alcotest.(check int) "only first fired" 1 !fired;
  check_float "clock at horizon" 2. (Time.to_sec (Scheduler.now s));
  Alcotest.(check int) "one pending" 1 (Scheduler.pending s);
  Scheduler.run s;
  Alcotest.(check int) "rest fired" 2 !fired

let sched_nested_scheduling () =
  let s = Scheduler.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    if !count < 5 then ignore (Scheduler.after s (Time.of_sec 1.) tick)
  in
  ignore (Scheduler.after s (Time.of_sec 1.) tick);
  Scheduler.run s;
  Alcotest.(check int) "chain of 5" 5 !count;
  check_float "final clock" 5. (Time.to_sec (Scheduler.now s))

let sched_stop () =
  let s = Scheduler.create () in
  let count = ref 0 in
  ignore (Scheduler.at s (Time.of_sec 1.) (fun () -> incr count; Scheduler.stop s));
  ignore (Scheduler.at s (Time.of_sec 2.) (fun () -> incr count));
  Scheduler.run s;
  Alcotest.(check int) "stopped after first" 1 !count

let sched_queue_high_water_mark () =
  let s = Scheduler.create () in
  (* Each tick keeps one successor pending, so the peak is the initial 3. *)
  List.iter
    (fun t -> ignore (Scheduler.at s (Time.of_sec t) ignore))
    [ 1.; 2.; 3. ];
  Scheduler.run s;
  Alcotest.(check int) "peak pending" 3 (Scheduler.queue_high_water_mark s)

let sched_rejects_past () =
  let s = Scheduler.create () in
  ignore (Scheduler.at s (Time.of_sec 1.) ignore);
  Scheduler.run s;
  Alcotest.check_raises "past" (Invalid_argument "Scheduler.at: time in the past")
    (fun () -> ignore (Scheduler.at s (Time.of_sec 0.5) ignore))

(* ------------------------------------------------------------------ *)
(* Rng *)

let rng_deterministic () =
  let a = Rng.create ~seed:42L and b = Rng.create ~seed:42L in
  for _ = 1 to 100 do
    Alcotest.(check bool) "same stream" true (Rng.bits64 a = Rng.bits64 b)
  done

let rng_different_seeds () =
  let a = Rng.create ~seed:1L and b = Rng.create ~seed:2L in
  Alcotest.(check bool) "different" false (Rng.bits64 a = Rng.bits64 b)

let rng_split_independent () =
  let parent = Rng.create ~seed:7L in
  let c1 = Rng.split parent in
  let c2 = Rng.split parent in
  Alcotest.(check bool) "children differ" false (Rng.bits64 c1 = Rng.bits64 c2)

let rng_split_named_stable () =
  let mk () = Rng.create ~seed:7L in
  let a = Rng.split_named (mk ()) "alpha" in
  let b = Rng.split_named (mk ()) "alpha" in
  let c = Rng.split_named (mk ()) "beta" in
  Alcotest.(check bool) "same label same stream" true (Rng.bits64 a = Rng.bits64 b);
  Alcotest.(check bool) "distinct labels differ" false (Rng.bits64 a = Rng.bits64 c)

let mean_of n f =
  let s = ref 0. in
  for _ = 1 to n do
    s := !s +. f ()
  done;
  !s /. float_of_int n

let rng_float_uniform_mean () =
  let r = Rng.create ~seed:11L in
  let m = mean_of 100_000 (fun () -> Rng.float r) in
  Alcotest.(check (float 0.01)) "mean ~ 0.5" 0.5 m

let rng_float_range () =
  let r = Rng.create ~seed:12L in
  for _ = 1 to 1000 do
    let v = Rng.float_range r 2. 5. in
    Alcotest.(check bool) "in range" true (v >= 2. && v < 5.)
  done

let rng_exponential_mean () =
  let r = Rng.create ~seed:13L in
  let m = mean_of 100_000 (fun () -> Rng.exponential r ~mean:0.1) in
  Alcotest.(check (float 0.003)) "mean ~ 0.1" 0.1 m

let rng_pareto_properties () =
  let r = Rng.create ~seed:14L in
  (* shape 2.5, scale 1: mean = shape*scale/(shape-1) = 5/3 *)
  let m = mean_of 200_000 (fun () -> Rng.pareto r ~shape:2.5 ~scale:1.) in
  Alcotest.(check (float 0.05)) "pareto mean" (5. /. 3.) m;
  for _ = 1 to 1000 do
    Alcotest.(check bool) "above scale" true (Rng.pareto r ~shape:1.5 ~scale:2. >= 2.)
  done

let rng_gaussian_moments () =
  let r = Rng.create ~seed:15L in
  let w = Netstats.Welford.create () in
  for _ = 1 to 100_000 do
    Netstats.Welford.add w (Rng.gaussian r ~mean:3. ~std:2.)
  done;
  Alcotest.(check (float 0.05)) "mean" 3. (Netstats.Welford.mean w);
  Alcotest.(check (float 0.1)) "std" 2. (Netstats.Welford.std w)

let rng_int_bounds () =
  let r = Rng.create ~seed:16L in
  for _ = 1 to 1000 do
    let v = Rng.int r 7 in
    Alcotest.(check bool) "0..6" true (v >= 0 && v < 7)
  done

let rng_bool_probability () =
  let r = Rng.create ~seed:17L in
  let hits = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Rng.bool r 0.3 then incr hits
  done;
  Alcotest.(check (float 0.01)) "p ~ 0.3" 0.3 (float_of_int !hits /. float_of_int n)

(* Golden output vectors for the SplitMix stream: any change to the
   generator silently shifts every simulation's numbers, so the stream
   itself is pinned. If a generator change is intentional, regenerate by
   printing the first 16 draws for seed 42 and update these arrays (and
   say so in the changelog). *)

let golden_bits_42 =
  [|
    -1311375923707205002;
    3667969706196665743;
    -3540667958578944569;
    4530500562463130564;
    -2297492247042161043;
    2350990548547690821;
    652804711573139060;
    -1670085140222423005;
    -1600467178174335100;
    590601169448674018;
    4160580083079786344;
    614756434117067265;
    3499318217791169216;
    2937664714141215905;
    -4113194501045098669;
    1227044151658300395;
  |]

let golden_float_42 =
  [|
    0.85782033745714625;
    0.3976820724069442;
    0.61612001072588918;
    0.49119785522693249;
    0.75090539144882851;
    0.25489490602282938;
    0.070777228649636981;
    0.81892900627350906;
    0.826477000843164;
    0.06403310709887311;
    0.45109099648750239;
    0.066652026141916565;
    0.37939684139472885;
    0.31850224651059145;
    0.55404655861114727;
    0.1330363934963561;
  |]

let golden_exponential_42 =
  [|
    1.9506637919337944;
    0.50696985415369411;
    0.9574253031734451;
    0.67569605160923762;
    1.3899225006609106;
    0.29423000481024497;
    0.073406771982411578;
    1.7088660940854994;
    1.7514451283987575;
    0.06617517396223703;
    0.59982260073243876;
    0.068977185333461838;
    0.4770634373815969;
    0.38346232427151333;
    0.80754072391605991;
    0.14275827943367198;
  |]

let rng_golden_bits () =
  let r = Rng.create ~seed:42L in
  Array.iteri
    (fun i expect ->
      Alcotest.(check int) (Printf.sprintf "bits[%d]" i) expect (Rng.bits r))
    golden_bits_42

let rng_golden_float () =
  let r = Rng.create ~seed:42L in
  Array.iteri
    (fun i expect ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "float[%d]" i)
        expect (Rng.float r))
    golden_float_42

let rng_golden_exponential () =
  let r = Rng.create ~seed:42L in
  Array.iteri
    (fun i expect ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "exponential[%d]" i)
        expect (Rng.exponential r ~mean:1.))
    golden_exponential_42

(* Uniformity sanity across arbitrary seeds: first two moments of the
   float stream must sit near those of U(0,1) (mean 1/2, variance 1/12)
   for every seed, not just the hand-picked ones above. *)
let rng_uniformity_property =
  QCheck.Test.make ~name:"float draws are U(0,1) in mean and variance"
    ~count:25
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let r = Rng.create ~seed:(Int64.of_int seed) in
      let n = 10_000 in
      let sum = ref 0. and sumsq = ref 0. in
      for _ = 1 to n do
        let v = Rng.float r in
        sum := !sum +. v;
        sumsq := !sumsq +. (v *. v)
      done;
      let mean = !sum /. float_of_int n in
      let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
      Float.abs (mean -. 0.5) < 0.02 && Float.abs (var -. (1. /. 12.)) < 0.01)

(* With 63-bit states, two of 1000 derived streams colliding means the
   label mixing is broken, not that we got unlucky. *)
let rng_split_named_collisions () =
  let parent = Rng.create ~seed:7L in
  let seen = Hashtbl.create 1024 in
  for i = 0 to 999 do
    let child = Rng.split_named parent (Printf.sprintf "client-%d" i) in
    let first = Rng.bits child in
    if Hashtbl.mem seen first then
      Alcotest.failf "streams for two labels collide (first draw %d)" first;
    Hashtbl.add seen first ()
  done

(* Free-list recycling: a popped or cancelled slot is reused by later
   schedules, and handles to its previous occupants must stay dead —
   cancelling one must never touch the slot's new event. *)
let eq_stale_handle_is_inert () =
  let q = Event_queue.create ~capacity:2 () in
  let h1 = Event_queue.schedule q (Time.of_sec 1.) ignore in
  (match Event_queue.pop q with
  | Some _ -> ()
  | None -> Alcotest.fail "pop returned nothing");
  let h2 = Event_queue.schedule q (Time.of_sec 2.) ignore in
  Alcotest.(check bool) "popped handle is dead" false
    (Event_queue.is_pending q h1);
  Event_queue.cancel q h1;
  Alcotest.(check bool) "stale cancel spares the slot's new event" true
    (Event_queue.is_pending q h2)

let eq_free_list_interleavings () =
  let q = Event_queue.create ~capacity:2 () in
  let stale = ref [] in
  let check_stale_dead () =
    List.iter
      (fun h ->
        Alcotest.(check bool) "stale handle stays dead" false
          (Event_queue.is_pending q h);
        Event_queue.cancel q h)
      !stale
  in
  for i = 1 to 100 do
    let at k = Time.of_sec (float_of_int i +. k) in
    let ha = Event_queue.schedule q (at 0.) ignore in
    let hb = Event_queue.schedule q (at 0.25) ignore in
    let hc = Event_queue.schedule q (at 0.5) ignore in
    Event_queue.cancel q hb;
    (* Popping skims the cancelled hb off the heap and fires ha. *)
    (match Event_queue.pop q with
    | Some (t, _) -> check_float "pop returns the live earliest"
        (Time.to_sec (at 0.)) (Time.to_sec t)
    | None -> Alcotest.fail "pop returned nothing");
    Event_queue.cancel q hc;
    stale := ha :: hb :: hc :: !stale;
    check_stale_dead ()
  done;
  (* Every slot above has been recycled many times; a live event must
     survive the whole graveyard being cancelled again. *)
  let live = Event_queue.schedule q (Time.of_sec 1e6) ignore in
  check_stale_dead ();
  Alcotest.(check bool) "live event survives stale cancels" true
    (Event_queue.is_pending q live);
  Alcotest.(check int) "exactly the live event remains" 1
    (Event_queue.length q)

(* ------------------------------------------------------------------ *)
(* Timer wheel *)

let wheel_rejects_near_and_far () =
  let w = Timer_wheel.create ~capacity:8 () in
  let q = Timer_wheel.quantum_ns w in
  (* Due within one quantum of the cursor: the caller must keep it. *)
  Alcotest.(check bool) "near is rejected" false
    (Timer_wheel.add w ~item:0 ~time_ns:(q / 2));
  (* At or past the horizon: also rejected. *)
  Alcotest.(check bool) "beyond horizon is rejected" false
    (Timer_wheel.add w ~item:1 ~time_ns:(Timer_wheel.horizon_ns w));
  Alcotest.(check int) "nothing stored" 0 (Timer_wheel.count w);
  Alcotest.(check bool) "parkable is accepted" true
    (Timer_wheel.add w ~item:2 ~time_ns:(4 * q));
  Alcotest.(check int) "one stored" 1 (Timer_wheel.count w)

let wheel_flushes_by_deadline () =
  let w = Timer_wheel.create ~capacity:8 () in
  let q = Timer_wheel.quantum_ns w in
  let deadline = 10 * q in
  Alcotest.(check bool) "parked" true (Timer_wheel.add w ~item:3 ~time_ns:deadline);
  let flushed = ref [] in
  let flush i = flushed := i :: !flushed in
  (* Advancing to two quanta short of the deadline must not flush: the
     wheel may be up to one quantum early, never two. *)
  Timer_wheel.advance w ~upto_ns:(deadline - (2 * q)) ~flush;
  Alcotest.(check (list int)) "not flushed early" [] !flushed;
  Timer_wheel.advance w ~upto_ns:deadline ~flush;
  Alcotest.(check (list int)) "flushed at deadline" [ 3 ] !flushed;
  Alcotest.(check int) "empty again" 0 (Timer_wheel.count w);
  Alcotest.(check bool) "cursor past the bucket" true
    (Timer_wheel.cursor_ns w > deadline - q)

let wheel_cascades_levels () =
  (* An item far enough out to live in a level >= 1 bucket must cascade
     down and still flush by its deadline, whether the cursor gets there
     in one jump or in many small steps. *)
  let steps_of stride =
    let w = Timer_wheel.create ~capacity:8 () in
    let q = Timer_wheel.quantum_ns w in
    (* 64 buckets per level-0 ring: 300 quanta needs level 1 or higher. *)
    let deadline = 300 * q in
    Alcotest.(check bool) "parked high" true
      (Timer_wheel.add w ~item:7 ~time_ns:deadline);
    let flushed_at = ref (-1) in
    let t = ref 0 in
    while !flushed_at < 0 && !t <= deadline + q do
      t := !t + stride;
      Timer_wheel.advance w ~upto_ns:!t ~flush:(fun i ->
          Alcotest.(check int) "the parked item" 7 i;
          flushed_at := !t)
    done;
    Alcotest.(check bool)
      (Printf.sprintf "flushed by deadline (stride %d): %d" stride !flushed_at)
      true
      (!flushed_at >= 0 && !flushed_at <= deadline + stride);
    Alcotest.(check bool) "not flushed absurdly early" true
      (!flushed_at > deadline - (2 * q))
  in
  steps_of (Timer_wheel.quantum_ns (Timer_wheel.create ()) / 3);
  steps_of (64 * Timer_wheel.quantum_ns (Timer_wheel.create ()))

let wheel_bounded_advance_straddles_rollover () =
  (* The sharded PDES engine drains its schedulers in bounded time
     windows, so the wheel sees a long train of small [advance] calls
     instead of one event-to-event jump — including advances that stop
     exactly on, one shy of, and one past a ring-rollover boundary.
     Items parked just around those boundaries (level-0 ring wraps at
     64 quanta, level-1 at 64*64) must each flush exactly once, never
     more than one quantum early and never after deadline + stride. *)
  let strides w = [ Timer_wheel.quantum_ns w / 2; Timer_wheel.quantum_ns w ] in
  let run_with stride =
    let w = Timer_wheel.create ~capacity:16 () in
    let q = Timer_wheel.quantum_ns w in
    (* Deadlines bracketing the level-0 ring wrap (64 q) and the
       level-1 wrap (4096 q), plus one mid-ring control point. *)
    let deadlines = [ 63 * q; 64 * q; 65 * q; 300 * q; 4095 * q; 4096 * q; 4097 * q ] in
    let items = List.mapi (fun i d -> (i, d)) deadlines in
    List.iter
      (fun (i, d) ->
        Alcotest.(check bool) "parked" true (Timer_wheel.add w ~item:i ~time_ns:d))
      items;
    let flushed_at = Array.make (List.length items) (-1) in
    let t = ref 0 in
    let horizon = (4097 * q) + (2 * stride) in
    while !t <= horizon do
      let upto = !t in
      Timer_wheel.advance w ~upto_ns:upto ~flush:(fun i ->
          Alcotest.(check int)
            (Printf.sprintf "item %d flushed once (stride %d)" i stride)
            (-1) flushed_at.(i);
          flushed_at.(i) <- upto);
      t := !t + stride
    done;
    List.iter
      (fun (i, d) ->
        let at = flushed_at.(i) in
        Alcotest.(check bool)
          (Printf.sprintf "item %d (deadline %dq) flushed in window (stride %d): %d"
             i (d / q) stride at)
          true
          (at >= 0 && at > d - (2 * q) && at <= d + stride))
      items;
    Alcotest.(check int) "wheel drained" 0 (Timer_wheel.count w)
  in
  List.iter run_with (strides (Timer_wheel.create ()))

(* The windowed-drain equivalence the PDES engine rests on: running a
   scheduler to [until] in many bounded windows must fire exactly the
   events a single monolithic drain fires, in exactly the same order —
   wheel staging, due-now fast path and FIFO tie-breaks included. *)
let sched_windowed_matches_monolithic_property =
  let interpret (window_raw, times) =
    let window_ns = (1 + window_raw) * 37_000_000 in
    let horizon_ns = 2_100_000_000 in
    let fire_order sched_drain =
      let s = Scheduler.create () in
      let order = ref [] in
      List.iteri
        (fun i t_ns ->
          ignore (Scheduler.at s (Time.of_ns t_ns) (fun () -> order := i :: !order)))
        times;
      sched_drain s;
      List.rev !order
    in
    let monolithic = fire_order (fun s -> Scheduler.run ~until:(Time.of_ns horizon_ns) s) in
    let windowed =
      fire_order (fun s ->
          let t = ref 0 in
          while !t < horizon_ns do
            t := min horizon_ns (!t + window_ns);
            Scheduler.run ~until:(Time.of_ns !t) s
          done)
    in
    monolithic = windowed && List.length monolithic = List.length times
  in
  QCheck.Test.make
    ~name:"windowed scheduler drain == monolithic drain" ~count:100
    QCheck.(pair (int_bound 40) (small_list (int_bound 2_000_000_000)))
    interpret

(* ------------------------------------------------------------------ *)
(* Event queue over the wheel: keyed timers and pre-sizing *)

let eq_keyed_dispatch_and_reserved_key () =
  let q = Event_queue.create () in
  let got = ref [] in
  let f key = got := key :: !got in
  ignore (Event_queue.schedule_keyed q (Time.of_sec 1.) f 42);
  ignore (Event_queue.schedule_keyed q (Time.of_sec 2.) f 7);
  let h = Event_queue.pop_if_before q (Time.of_sec 10.) in
  Alcotest.(check bool) "first due" false (Event_queue.is_nil h);
  Event_queue.fire q h;
  Alcotest.(check (list int)) "keyed action got its key" [ 42 ] !got;
  Alcotest.check_raises "min_int reserved"
    (Invalid_argument "Event_queue.schedule_keyed: reserved key") (fun () ->
      ignore (Event_queue.schedule_keyed q (Time.of_sec 3.) f min_int))

let eq_cancel_after_fire_is_inert () =
  let q = Event_queue.create ~capacity:2 () in
  let h = Event_queue.schedule q (Time.of_sec 1.) ignore in
  let popped = Event_queue.pop_if_before q (Time.of_sec 5.) in
  Event_queue.fire q popped;
  (* The slot is free again; a later event recycles it. Cancelling the
     fired handle must not touch the newcomer. *)
  let h2 = Event_queue.schedule q (Time.of_sec 2.) ignore in
  Alcotest.(check bool) "fired handle dead" false (Event_queue.is_pending q h);
  Event_queue.cancel q h;
  Alcotest.(check bool) "recycled slot's event survives" true
    (Event_queue.is_pending q h2)

let eq_presize_prevents_growth () =
  let q = Event_queue.create ~capacity:64 () in
  let hs =
    List.init 64 (fun i ->
        Event_queue.schedule q (Time.of_sec (float_of_int i)) ignore)
  in
  Alcotest.(check int) "no growth inside capacity" 0 (Event_queue.growth_count q);
  Alcotest.(check int) "capacity held" 64 (Event_queue.capacity q);
  (* Steady state: pop one, schedule one — recycled slots, still no growth. *)
  for i = 0 to 99 do
    let h = Event_queue.pop_if_before q Time.never in
    Event_queue.fire q h;
    ignore (Event_queue.schedule q (Time.of_sec (float_of_int (100 + i))) ignore)
  done;
  Alcotest.(check int) "steady state allocates no slots" 0
    (Event_queue.growth_count q);
  (* One past capacity: exactly one doubling. *)
  ignore (Event_queue.schedule q (Time.of_sec 1e3) ignore);
  Alcotest.(check int) "overflow doubles once" 1 (Event_queue.growth_count q);
  List.iter (fun h -> Event_queue.cancel q h) hs

let eq_far_timers_park_in_wheel () =
  let q = Event_queue.create () in
  ignore (Event_queue.schedule q (Time.of_sec 30.) ignore);
  ignore (Event_queue.schedule q (Time.of_ms 0.5) ignore);
  Alcotest.(check int) "only the far timer parked" 1 (Event_queue.wheel_parked q)

(* The equivalence property behind the wheel: an Event_queue (heap +
   wheel staging) must pop in exactly (time, scheduling order) — i.e.
   behave like a plain sorted list — under arbitrary interleavings of
   schedule / cancel / re-arm / pop, with times spread across wheel
   levels. *)
let eq_wheel_matches_reference_property =
  let interpret ops =
    let q = Event_queue.create ~capacity:4 () in
    (* Reference: (time_ns, seq, id, alive) — popped by (time, seq). *)
    let model = ref [] in
    let handles = ref [] in
    (* (handle, model cell) pairs *)
    let seq = ref 0 in
    let fired = ref (-1) in
    let ok = ref true in
    let pop_both () =
      let live = List.filter (fun (_, _, _, alive) -> !alive) !model in
      let best =
        List.fold_left
          (fun acc ((t, s, _, _) as c) ->
            match acc with
            | None -> Some c
            | Some (bt, bs, _, _) ->
                if t < bt || (t = bt && s < bs) then Some c else acc)
          None live
      in
      match (Event_queue.pop q, best) with
      | None, None -> ()
      | Some (t, act), Some (mt, _, mid, alive) ->
          act ();
          alive := false;
          if Time.to_ns t <> mt || !fired <> mid then ok := false
      | Some _, None | None, Some _ -> ok := false
    in
    List.iter
      (fun (kind, x) ->
        match kind with
        | 0 ->
            (* Times stride ~0.1 ms so a run of schedules spans level-0
               buckets, level-1+ buckets and the due-now fast path. *)
            let t_ns = x * 97_003 in
            let id = !seq in
            incr seq;
            let h =
              Event_queue.schedule q (Time.of_ns t_ns) (fun () -> fired := id)
            in
            let cell = (t_ns, id, id, ref true) in
            model := cell :: !model;
            handles := (h, cell) :: !handles
        | 1 -> (
            match !handles with
            | [] -> ()
            | hs ->
                let h, (_, _, _, alive) = List.nth hs (x mod List.length hs) in
                Event_queue.cancel q h;
                alive := false)
        | _ -> pop_both ())
      ops;
    (* Drain: the full remaining order must match too. *)
    let rec drain n = if n > 0 then (pop_both (); drain (n - 1)) in
    drain (List.length !model);
    pop_both ();
    !ok && Event_queue.is_empty q
  in
  QCheck.Test.make ~name:"wheel-backed queue pops like a sorted list" ~count:300
    QCheck.(list (pair (int_bound 2) (int_bound 1_000_000)))
    interpret

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "engine.time",
      [
        Alcotest.test_case "roundtrip" `Quick time_roundtrip;
        Alcotest.test_case "arithmetic" `Quick time_arithmetic;
        Alcotest.test_case "invalid inputs" `Quick time_invalid;
      ] );
    ( "engine.heap",
      [
        Alcotest.test_case "basic operations" `Quick heap_basic;
        Alcotest.test_case "pop_exn on empty" `Quick heap_pop_exn_empty;
      ]
      @ qsuite [ heap_sort_property; heap_interleaved_property ] );
    ( "engine.event_queue",
      [
        Alcotest.test_case "time order" `Quick eq_fires_in_time_order;
        Alcotest.test_case "fifo within timestamp" `Quick eq_fifo_within_timestamp;
        Alcotest.test_case "cancel" `Quick eq_cancel;
        Alcotest.test_case "next_time skips cancelled" `Quick eq_next_time_skips_cancelled;
        Alcotest.test_case "high-water mark" `Quick eq_high_water_mark;
        Alcotest.test_case "stale handle is inert" `Quick eq_stale_handle_is_inert;
        Alcotest.test_case "free-list interleavings" `Quick eq_free_list_interleavings;
        Alcotest.test_case "keyed dispatch and reserved key" `Quick
          eq_keyed_dispatch_and_reserved_key;
        Alcotest.test_case "cancel after fire is inert" `Quick
          eq_cancel_after_fire_is_inert;
        Alcotest.test_case "pre-size prevents growth" `Quick eq_presize_prevents_growth;
        Alcotest.test_case "far timers park in wheel" `Quick eq_far_timers_park_in_wheel;
      ]
      @ qsuite [ eq_wheel_matches_reference_property ] );
    ( "engine.timer_wheel",
      [
        Alcotest.test_case "rejects near and far times" `Quick wheel_rejects_near_and_far;
        Alcotest.test_case "flushes by deadline" `Quick wheel_flushes_by_deadline;
        Alcotest.test_case "cascades across levels" `Quick wheel_cascades_levels;
        Alcotest.test_case "bounded advances straddle ring rollover" `Quick
          wheel_bounded_advance_straddles_rollover;
      ]
      @ qsuite [ sched_windowed_matches_monolithic_property ] );
    ( "engine.scheduler",
      [
        Alcotest.test_case "runs and advances clock" `Quick sched_runs_and_advances_clock;
        Alcotest.test_case "until bounds run" `Quick sched_until_bounds_and_advances;
        Alcotest.test_case "nested scheduling" `Quick sched_nested_scheduling;
        Alcotest.test_case "stop" `Quick sched_stop;
        Alcotest.test_case "queue high-water mark" `Quick sched_queue_high_water_mark;
        Alcotest.test_case "rejects past times" `Quick sched_rejects_past;
      ] );
    ( "engine.rng",
      [
        Alcotest.test_case "deterministic" `Quick rng_deterministic;
        Alcotest.test_case "seed sensitivity" `Quick rng_different_seeds;
        Alcotest.test_case "split independence" `Quick rng_split_independent;
        Alcotest.test_case "split_named stability" `Quick rng_split_named_stable;
        Alcotest.test_case "uniform mean" `Quick rng_float_uniform_mean;
        Alcotest.test_case "float_range bounds" `Quick rng_float_range;
        Alcotest.test_case "exponential mean" `Quick rng_exponential_mean;
        Alcotest.test_case "pareto mean and support" `Quick rng_pareto_properties;
        Alcotest.test_case "gaussian moments" `Quick rng_gaussian_moments;
        Alcotest.test_case "int bounds" `Quick rng_int_bounds;
        Alcotest.test_case "bool probability" `Quick rng_bool_probability;
        Alcotest.test_case "golden bits" `Quick rng_golden_bits;
        Alcotest.test_case "golden float" `Quick rng_golden_float;
        Alcotest.test_case "golden exponential" `Quick rng_golden_exponential;
        Alcotest.test_case "split_named collisions" `Quick rng_split_named_collisions;
      ]
      @ qsuite [ rng_uniformity_property ] );
  ]
