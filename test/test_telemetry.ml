(* Tests for the telemetry subsystem: registry, event bus, perf phases,
   progress reporting, report contract, and probe integration with Run. *)

open Telemetry

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Registry *)

let registry_get_or_create () =
  let r = Registry.create () in
  let a = Registry.counter r "requests_total" in
  let b = Registry.counter r "requests_total" in
  Registry.inc a;
  Registry.inc ~by:2 b;
  (* Same key -> same cell, regardless of which handle updated it. *)
  Alcotest.(check int) "shared cell" 3 (Registry.counter_value a);
  Alcotest.(check int) "shared cell (b)" 3 (Registry.counter_value b)

let registry_labels_canonicalised () =
  let r = Registry.create () in
  let a = Registry.counter r ~labels:[ ("x", "1"); ("y", "2") ] "m" in
  let b = Registry.counter r ~labels:[ ("y", "2"); ("x", "1") ] "m" in
  let other = Registry.counter r ~labels:[ ("x", "9") ] "m" in
  Registry.inc a;
  Alcotest.(check int) "label order irrelevant" 1 (Registry.counter_value b);
  Alcotest.(check int) "distinct labels distinct" 0 (Registry.counter_value other)

let registry_kind_mismatch_raises () =
  let r = Registry.create () in
  ignore (Registry.counter r "m");
  Alcotest.(check bool) "gauge over counter raises" true
    (try
       ignore (Registry.gauge r "m");
       false
     with Invalid_argument _ -> true)

let registry_invalid_name_raises () =
  let r = Registry.create () in
  Alcotest.(check bool) "bad name raises" true
    (try
       ignore (Registry.counter r "9bad name");
       false
     with Invalid_argument _ -> true)

let registry_gauge_set_max () =
  let r = Registry.create () in
  let g = Registry.gauge r "hwm" in
  Registry.set_max g 5.;
  Registry.set_max g 3.;
  check_float "keeps max" 5. (Registry.gauge_value g);
  Registry.set_max g 7.;
  check_float "raises to new max" 7. (Registry.gauge_value g);
  let acc = Registry.gauge r "acc" in
  Registry.add acc 1.5;
  Registry.add acc 2.5;
  check_float "add accumulates" 4. (Registry.gauge_value acc)

let registry_histogram_quantiles () =
  let r = Registry.create () in
  let h = Registry.histogram r ~lo:0. ~hi:100. ~bins:20 "lat" in
  for i = 1 to 1000 do
    Registry.observe h (float_of_int (i mod 100))
  done;
  Alcotest.(check int) "count" 1000 (Registry.observations h);
  Alcotest.(check (float 5.)) "p50 near 50" 50. (Registry.p50 h);
  Alcotest.(check (float 5.)) "p99 near 99" 99. (Registry.p99 h)

let registry_json_roundtrip () =
  let r = Registry.create () in
  Registry.inc (Registry.counter r ~help:"hits" "hits_total");
  Registry.set (Registry.gauge r "level") 2.5;
  Registry.observe (Registry.histogram r ~lo:0. ~hi:1. ~bins:4 "h") 0.3;
  let s = Json.to_string (Registry.to_json r) in
  match Json.parse s with
  | Error e -> Alcotest.failf "registry json does not parse: %s" e
  | Ok (Json.List metrics) ->
      Alcotest.(check int) "three metrics" 3 (List.length metrics)
  | Ok _ -> Alcotest.fail "expected a list"

let registry_prometheus_text () =
  let r = Registry.create () in
  Registry.inc (Registry.counter r ~help:"total hits" "hits_total");
  Registry.observe (Registry.histogram r ~lo:0. ~hi:1. ~bins:2 "lat") 0.3;
  let text = Registry.to_prometheus r in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "contains %S" needle)
        true
        (Astring_like.contains text needle))
    [ "# HELP hits_total total hits"; "# TYPE hits_total counter";
      "hits_total 1"; "# TYPE lat histogram"; "lat_bucket"; "le=\"+Inf\"";
      "lat_count 1" ]

(* ------------------------------------------------------------------ *)
(* Registry / probe merging *)

let registry_merge_counters_sum () =
  let a = Registry.create () and b = Registry.create () in
  Registry.inc ~by:3 (Registry.counter a ~help:"hits" "c_total");
  Registry.inc ~by:4 (Registry.counter b "c_total");
  Registry.inc ~by:5 (Registry.counter b ~labels:[ ("k", "v") ] "c_total");
  Registry.inc (Registry.counter b "only_in_b");
  Registry.merge ~into:a b;
  Alcotest.(check int) "counters sum" 7
    (Registry.counter_value (Registry.counter a "c_total"));
  Alcotest.(check int) "labelled series separate" 5
    (Registry.counter_value (Registry.counter a ~labels:[ ("k", "v") ] "c_total"));
  Alcotest.(check int) "missing series created" 1
    (Registry.counter_value (Registry.counter a "only_in_b"))

let registry_merge_gauge_rules () =
  let fresh v =
    let r = Registry.create () in
    Registry.set (Registry.gauge r "g") v;
    r
  in
  let last_write = fresh 1.5 in
  Registry.merge ~into:last_write (fresh 0.5);
  check_float "default is last-write" 0.5
    (Registry.gauge_value (Registry.gauge last_write "g"));
  let maxed = fresh 1.5 in
  Registry.merge ~gauge_rule:(fun ~name:_ ~labels:_ -> `Max) ~into:maxed (fresh 0.5);
  check_float "max keeps larger" 1.5
    (Registry.gauge_value (Registry.gauge maxed "g"));
  let summed = fresh 1.5 in
  Registry.merge ~gauge_rule:(fun ~name:_ ~labels:_ -> `Sum) ~into:summed (fresh 0.5);
  check_float "sum accumulates" 2.
    (Registry.gauge_value (Registry.gauge summed "g"))

let registry_merge_histograms_combine () =
  let observe_all h vs = List.iter (Registry.observe h) vs in
  let xs = [ 1.; 3.; 5.; 7.; 9.; 11. ] and ys = [ 2.; 4.; 6.; 8.; 40. ] in
  let a = Registry.create () and b = Registry.create () in
  let ha = Registry.histogram a ~lo:0. ~hi:20. ~bins:10 "lat" in
  let hb = Registry.histogram b ~lo:0. ~hi:20. ~bins:10 "lat" in
  observe_all ha xs;
  observe_all hb ys;
  Registry.merge ~into:a b;
  (* Reference: every observation into one histogram, in one stream. *)
  let all = Registry.create () in
  let href = Registry.histogram all ~lo:0. ~hi:20. ~bins:10 "lat" in
  observe_all href (xs @ ys);
  Alcotest.(check int) "count" (Registry.observations href)
    (Registry.observations ha);
  (* Compare the exposed JSON fields: moments and buckets must match the
     single-stream reference exactly (Welford merge is exact on these
     inputs); p50/p99 only to bucket resolution. *)
  let payload r =
    match Registry.to_json r with
    | Json.List [ Json.Obj fields ] -> fields
    | _ -> Alcotest.fail "unexpected registry json shape"
  in
  let merged = payload a and reference = payload all in
  List.iter
    (fun key ->
      Alcotest.(check string)
        (key ^ " matches single-stream")
        (Json.to_string (List.assoc key reference))
        (Json.to_string (List.assoc key merged)))
    [ "count"; "min"; "max"; "buckets" ];
  let approx key tol =
    match (List.assoc key merged, List.assoc key reference) with
    | Json.Float m, Json.Float r -> Alcotest.(check (float tol)) key r m
    | _ -> Alcotest.failf "%s is not a float" key
  in
  approx "sum" 1e-9;
  approx "mean" 1e-9;
  approx "p50" 2.;
  (* one bin width *)
  approx "p99" 40.
(* p99 sits in the overflow bucket; the replay clamps it to [hi]. *)

let registry_merge_layout_mismatch_raises () =
  let a = Registry.create () and b = Registry.create () in
  ignore (Registry.histogram a ~lo:0. ~hi:10. ~bins:5 "h");
  Registry.observe (Registry.histogram b ~lo:0. ~hi:20. ~bins:5 "h") 1.;
  Alcotest.(check bool) "layout mismatch raises" true
    (try
       Registry.merge ~into:a b;
       false
     with Invalid_argument _ -> true)

let probe_merge_report_validates () =
  let main = Probe.create () and worker = Probe.create () in
  Probe.note_run main ~label:"a" ~sim_s:10. ~wall_s:0.5 ~events:1000
    ~event_queue_hwm:42 ~gateway_queue_hwm:7 ~arrivals:900 ~drops:3
    ~gc:
      {
        Perf.minor_words = 10_000.;
        promoted_words = 100.;
        major_collections = 1;
      }
    ();
  Probe.note_run worker ~label:"b" ~sim_s:10. ~wall_s:0.25 ~events:500
    ~event_queue_hwm:99 ~gateway_queue_hwm:5 ~arrivals:450 ~drops:1
    ~gc:
      {
        Perf.minor_words = 5_000.;
        promoted_words = 50.;
        major_collections = 0;
      }
    ();
  Perf.add_s worker.Probe.phases "run" 0.25;
  Probe.merge ~into:main worker;
  Alcotest.(check int) "runs sum" 2 (Probe.runs_total main);
  Alcotest.(check int) "events sum" 1500 (Probe.events_total main);
  let gauge name =
    Registry.gauge_value (Registry.gauge main.Probe.registry name)
  in
  check_float "hwm is max" 99. (gauge Probe.m_eq_hwm);
  check_float "sim seconds sum" 20. (gauge Probe.m_sim_seconds);
  check_float "wall seconds sum" 0.75 (gauge Probe.m_run_wall);
  check_float "phases accumulate" 0.25 (Perf.duration_s main.Probe.phases "run");
  check_float "minor words sum" 15_000. (gauge Probe.m_minor_words);
  check_float "words/event recomputed after merge" 10.
    (gauge Probe.m_words_per_event);
  match Report.validate (Report.to_json (Report.of_probe ~label:"merged" main)) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "merged report invalid: %s" e

(* ------------------------------------------------------------------ *)
(* Event bus *)

let sample_events =
  [
    Event_bus.Packet
      {
        time = 1.25;
        kind = Event_bus.Arrival;
        link = "bottleneck";
        flow = 3;
        seq = Some 17;
        size_bytes = 1000;
        uid = 42;
      };
    Event_bus.Packet
      {
        time = 1.5;
        kind = Event_bus.Drop;
        link = "bottleneck";
        flow = 4;
        seq = None;
        size_bytes = 40;
        uid = 43;
      };
    Event_bus.Tcp { time = 2.; kind = Event_bus.Timeout; flow = 1; cwnd = 1. };
    Event_bus.Queue
      {
        time = 3.;
        kind = Event_bus.Early_drop;
        queue = "gateway";
        flow = 2;
        avg = 7.5;
      };
    Event_bus.Custom { time = 4.; name = "phase_mark"; value = 1. };
  ]

let bus_pub_sub_order () =
  let bus = Event_bus.create () in
  Alcotest.(check bool) "no subscribers" false (Event_bus.has_subscribers bus);
  let log = ref [] in
  let _s1 = Event_bus.subscribe bus (fun _ -> log := "a" :: !log) in
  let s2 = Event_bus.subscribe bus (fun _ -> log := "b" :: !log) in
  Alcotest.(check bool) "has subscribers" true (Event_bus.has_subscribers bus);
  Event_bus.publish bus (List.hd sample_events);
  Alcotest.(check (list string)) "subscription order" [ "a"; "b" ] (List.rev !log);
  Event_bus.unsubscribe bus s2;
  Event_bus.unsubscribe bus s2 (* no-op *);
  Event_bus.publish bus (List.hd sample_events);
  Alcotest.(check (list string)) "after unsubscribe" [ "a"; "b"; "a" ] (List.rev !log);
  Alcotest.(check int) "published counts everything" 2 (Event_bus.published bus)

let bus_published_without_subscribers () =
  let bus = Event_bus.create () in
  List.iter (Event_bus.publish bus) sample_events;
  Alcotest.(check int) "counter still bumps" (List.length sample_events)
    (Event_bus.published bus)

let bus_ndjson_roundtrip () =
  List.iter
    (fun e ->
      let line = Event_bus.to_ndjson e in
      Alcotest.(check bool) "one line" false (String.contains line '\n');
      match Event_bus.of_ndjson_line line with
      | Ok e' -> Alcotest.(check bool) "round-trips" true (e = e')
      | Error msg -> Alcotest.failf "parse failed on %s: %s" line msg)
    sample_events

let bus_ndjson_event_field_first () =
  let line = Event_bus.to_ndjson (List.hd sample_events) in
  Alcotest.(check string) "discriminator leads" "{\"event\":\"packet\""
    (String.sub line 0 17)

let bus_of_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Event_bus.of_ndjson_line s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [ "not json"; "{}"; "{\"event\":\"nope\",\"time\":0}"; "[1,2]" ]

let event_gen =
  let open QCheck.Gen in
  let time = map (fun i -> float_of_int i /. 16.) (int_bound 100_000) in
  let pos = int_bound 10_000 in
  let name = oneofl [ "a"; "gateway"; "bottleneck"; "x_1" ] in
  frequency
    [
      ( 4,
        map
          (fun ((time, kind, link), (flow, seq, size_bytes, uid)) ->
            Event_bus.Packet { time; kind; link; flow; seq; size_bytes; uid })
          (pair
             (triple time
                (oneofl [ Event_bus.Arrival; Event_bus.Drop; Event_bus.Depart ])
                name)
             (quad pos (option pos) pos pos)) );
      ( 2,
        map
          (fun (time, kind, flow, cwnd) ->
            Event_bus.Tcp { time; kind; flow; cwnd = float_of_int cwnd /. 8. })
          (quad time
             (oneofl
                [
                  Event_bus.Timeout; Event_bus.Fast_retransmit;
                  Event_bus.Cwnd_cut; Event_bus.Ecn_reaction;
                ])
             pos pos) );
      ( 2,
        map
          (fun (time, kind, queue, flow, avg) ->
            Event_bus.Queue { time; kind; queue; flow; avg = float_of_int avg /. 4. })
          (tup5 time
             (oneofl [ Event_bus.Ecn_mark; Event_bus.Early_drop; Event_bus.Forced_drop ])
             name pos pos) );
      ( 1,
        map
          (fun (time, name, v) ->
            Event_bus.Custom { time; name; value = float_of_int v /. 2. })
          (triple time name pos) );
    ]

let bus_roundtrip_property =
  QCheck.Test.make ~name:"ndjson round-trip on random events" ~count:500
    (QCheck.make event_gen)
    (fun e -> Event_bus.of_ndjson_line (Event_bus.to_ndjson e) = Ok e)

(* ------------------------------------------------------------------ *)
(* Perf phases *)

let perf_phases_accumulate () =
  let p = Perf.phases () in
  check_float "untimed is 0" 0. (Perf.duration_s p "setup");
  Perf.add_s p "setup" 0.5;
  Perf.add_s p "run" 1.;
  Perf.add_s p "setup" 0.25;
  check_float "accumulates" 0.75 (Perf.duration_s p "setup");
  Alcotest.(check (list string)) "first-use order" [ "setup"; "run" ]
    (List.map fst (Perf.durations_s p));
  check_float "total" 1.75 (Perf.total_s p);
  let timed = Perf.time p "extra" (fun () -> 42) in
  Alcotest.(check int) "time returns result" 42 timed;
  Alcotest.(check bool) "timed phase recorded" true
    (List.mem_assoc "extra" (Perf.durations_s p))

(* ------------------------------------------------------------------ *)
(* Progress *)

let with_buffer_channel f =
  let path = Filename.temp_file "burstsim_progress" ".txt" in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      f oc;
      close_out oc;
      let ic = open_in path in
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      s)

let progress_lines () =
  let clock = ref 0. in
  let now () = !clock in
  let text =
    with_buffer_channel (fun oc ->
        let p = Progress.create ~out:oc ~now ~total:4 () in
        clock := 10.;
        Progress.step p ~events:10_000 "Reno n=2";
        Alcotest.(check int) "one completed" 1 (Progress.completed p);
        clock := 20.;
        Progress.step p "Reno n=4";
        Progress.finish p)
  in
  Alcotest.(check bool) "shows counter" true (Astring_like.contains text "1/4");
  Alcotest.(check bool) "shows label" true (Astring_like.contains text "Reno n=2");
  (* After 1 of 4 runs in 10 s, the remaining 3 extrapolate to 30 s. *)
  Alcotest.(check bool) "eta extrapolates" true (Astring_like.contains text "30s");
  Alcotest.(check bool) "rate when events given" true
    (Astring_like.contains text "ev/s")

let progress_formatting () =
  Alcotest.(check string) "seconds" "42s" (Progress.format_duration 42.);
  Alcotest.(check string) "minutes" "3m09s" (Progress.format_duration 189.);
  Alcotest.(check string) "hours" "2h05m" (Progress.format_duration 7500.);
  Alcotest.(check string) "plain rate" "850 ev/s" (Progress.format_rate 850.);
  Alcotest.(check string) "kilo rate" "1.2k ev/s" (Progress.format_rate 1230.);
  Alcotest.(check string) "mega rate" "3.10M ev/s" (Progress.format_rate 3.1e6)

(* ------------------------------------------------------------------ *)
(* Report *)

let report_of_probe_validates () =
  let probe = Probe.create () in
  Probe.note_run probe ~label:"t" ~sim_s:10. ~wall_s:0.5 ~events:1000
    ~event_queue_hwm:42 ~gateway_queue_hwm:7 ~arrivals:900 ~drops:3
    ~gc:
      {
        Perf.minor_words = 4_000.;
        promoted_words = 40.;
        major_collections = 0;
      }
    ();
  let report = Report.of_probe ~label:"test" probe in
  Alcotest.(check int) "runs" 1 report.Report.runs;
  Alcotest.(check int) "events" 1000 report.Report.events_fired;
  Alcotest.(check int) "eq hwm" 42 report.Report.event_queue_hwm;
  check_float "rate" 2000. report.Report.events_per_sec;
  let json = Report.to_json report in
  (match Report.validate json with
  | Ok () -> ()
  | Error e -> Alcotest.failf "fresh report invalid: %s" e);
  (* And it survives a print/parse cycle. *)
  match Json.parse (Json.to_string json) with
  | Ok j -> (
      match Report.validate j with
      | Ok () -> ()
      | Error e -> Alcotest.failf "parsed report invalid: %s" e)
  | Error e -> Alcotest.failf "report does not parse: %s" e

let report_validate_rejects () =
  (match Report.validate (Json.String "nope") with
  | Ok () -> Alcotest.fail "accepted a non-object"
  | Error _ -> ());
  let probe = Probe.create () in
  let json = Report.to_json (Report.of_probe probe) in
  match json with
  | Json.Obj fields ->
      List.iter
        (fun required ->
          let mutilated = Json.Obj (List.remove_assoc required fields) in
          match Report.validate mutilated with
          | Ok () -> Alcotest.failf "accepted report without %s" required
          | Error msg ->
              Alcotest.(check bool) "error names the field" true
                (Astring_like.contains msg required))
        Report.required_fields
  | _ -> Alcotest.fail "report is not an object"

let alloc_row ?(wpe = 5.8) ?(threshold = 6.0) ?(leak_free = true) () =
  Json.Obj
    [
      ("scenario", Json.String "Reno");
      ("clients", Json.Int 50);
      ("events", Json.Int 1000);
      ("wall_s", Json.Float 0.1);
      ("events_per_sec", Json.Float 1e4);
      ("minor_words_per_event", Json.Float wpe);
      ("promoted_words_per_event", Json.Float 0.02);
      ("major_collections", Json.Int 0);
      ("threshold_minor_words_per_event", Json.Float threshold);
      ("min_events_per_sec", Json.Null);
      ("leak_free", Json.Bool leak_free);
    ]

let alloc_doc rows =
  Json.Obj
    [
      ("clients", Json.Int 50);
      ("duration_s", Json.Float 30.);
      ("reps", Json.Int 3);
      ("baseline_minor_words_per_event", Json.Float 30.48);
      ("baseline_events_per_sec", Json.Float 1.3e6);
      ("rows", Json.List rows);
    ]

let report_validate_alloc_accepts () =
  match Report.validate_alloc (alloc_doc [ alloc_row () ]) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "rejected a well-formed alloc report: %s" e

let report_validate_alloc_rejects () =
  let expect_error name doc needle =
    match Report.validate_alloc doc with
    | Ok () -> Alcotest.failf "accepted %s" name
    | Error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "%s error mentions %s (got: %s)" name needle msg)
          true
          (Astring_like.contains msg needle)
  in
  expect_error "a non-object" (Json.String "nope") "not a JSON object";
  expect_error "empty rows" (alloc_doc []) "rows is empty";
  expect_error "over-budget row"
    (alloc_doc [ alloc_row ~wpe:6.5 () ])
    "exceeds threshold";
  expect_error "leaking row"
    (alloc_doc [ alloc_row ~leak_free:false () ])
    "leak_free is false";
  (* One bad row fails the whole document even next to good ones. *)
  expect_error "mixed rows"
    (alloc_doc [ alloc_row (); alloc_row ~wpe:9.9 () ])
    "exceeds threshold";
  match alloc_doc [ alloc_row () ] with
  | Json.Obj fields ->
      List.iter
        (fun required ->
          let mutilated = Json.Obj (List.remove_assoc required fields) in
          match Report.validate_alloc mutilated with
          | Ok () -> Alcotest.failf "accepted alloc report without %s" required
          | Error msg ->
              Alcotest.(check bool) "error names the field" true
                (Astring_like.contains msg required))
        Report.alloc_required_fields
  | _ -> Alcotest.fail "alloc doc is not an object"

let flows_row ?(bytes_per_flow = 496) ?(wpe = 6.0) ?(ft_growths = 0)
    ?(q_growths = 0) ?(leak_free = true) ?(fluid_gated = true)
    ?(throughput_ratio = 1.0) ?(queue_ratio = 0.5) ?(smoke = false) () =
  (* [smoke] is emitted only when true, like older reports that predate
     the field: absent must read as false. *)
  Json.Obj
    ((if smoke then [ ("smoke", Json.Bool true) ] else [])
    @ [
      ("flows", Json.Int 1000);
      ("duration_s", Json.Float 10.);
      ("fluid_gated", Json.Bool fluid_gated);
      ("events", Json.Int 1_000_000);
      ("wall_s", Json.Float 1.0);
      ("events_per_sec", Json.Float 1e6);
      ("minor_words_per_event", Json.Float wpe);
      ("promoted_words_per_event", Json.Float 0.02);
      ("major_collections", Json.Int 0);
      ("bytes_per_flow", Json.Int bytes_per_flow);
      ("flow_footprint_bytes", Json.Int (bytes_per_flow * 1000));
      ("flow_table_growths", Json.Int ft_growths);
      ("queue_growths", Json.Int q_growths);
      ("queue_capacity", Json.Int 52_064);
      ("queue_hwm", Json.Int 5_000);
      ("wheel_parked", Json.Int 9_000);
      ("delivered", Json.Int 120_000);
      ("measured_queue", Json.Float 2400.);
      ("fluid_queue", Json.Float 4800.);
      ("queue_ratio", Json.Float queue_ratio);
      ("measured_throughput_pps", Json.Float 16_000.);
      ("fluid_throughput_pps", Json.Float 16_000.);
      ("throughput_ratio", Json.Float throughput_ratio);
      ("leak_free", Json.Bool leak_free);
    ])

let flows_doc rows =
  Json.Obj
    [
      ("per_flow_capacity_pps", Json.Float 16.);
      ("base_rtt_s", Json.Float 0.2);
      ("bytes_per_flow_budget", Json.Int 512);
      ("minor_words_per_event_budget", Json.Float 8.0);
      ("min_events_per_sec", Json.Float 300_000.);
      ("throughput_ratio_min", Json.Float 0.8);
      ("throughput_ratio_max", Json.Float 1.05);
      ("queue_ratio_min", Json.Float 0.35);
      ("queue_ratio_max", Json.Float 1.5);
      ("rows", Json.List rows);
    ]

let report_validate_flows_accepts () =
  (match Report.validate_flows (flows_doc [ flows_row () ]) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "rejected a well-formed flows report: %s" e);
  (* A non-converged row reports its ratios but is not gated on them. *)
  match
    Report.validate_flows
      (flows_doc [ flows_row ~fluid_gated:false ~throughput_ratio:0.3 () ])
  with
  | Ok () -> ()
  | Error e -> Alcotest.failf "gated an ungated row's fluid ratio: %s" e

let report_validate_flows_rejects () =
  let expect_error name doc needle =
    match Report.validate_flows doc with
    | Ok () -> Alcotest.failf "accepted %s" name
    | Error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "%s error mentions %s (got: %s)" name needle msg)
          true
          (Astring_like.contains msg needle)
  in
  expect_error "a non-object" (Json.String "nope") "not a JSON object";
  expect_error "empty rows" (flows_doc []) "rows is empty";
  expect_error "fat row"
    (flows_doc [ flows_row ~bytes_per_flow:600 () ])
    "exceeds budget";
  expect_error "allocating row"
    (flows_doc [ flows_row ~wpe:8.5 () ])
    "exceeds budget";
  expect_error "grown flow table"
    (flows_doc [ flows_row ~ft_growths:1 () ])
    "slabs grew";
  expect_error "grown event queue"
    (flows_doc [ flows_row ~q_growths:2 () ])
    "slabs grew";
  expect_error "leaking row"
    (flows_doc [ flows_row ~leak_free:false () ])
    "leak_free is false";
  expect_error "slow converged row"
    (flows_doc [ flows_row ~throughput_ratio:0.5 () ])
    "throughput ratio";
  expect_error "off-model queue"
    (flows_doc [ flows_row ~queue_ratio:3.0 () ])
    "queue ratio";
  (match flows_doc [ flows_row () ] with
  | Json.Obj fields ->
      List.iter
        (fun required ->
          let mutilated = Json.Obj (List.remove_assoc required fields) in
          match Report.validate_flows mutilated with
          | Ok () -> Alcotest.failf "accepted flows report without %s" required
          | Error msg ->
              Alcotest.(check bool) "error names the field" true
                (Astring_like.contains msg required))
        Report.flows_required_fields
  | _ -> Alcotest.fail "flows doc is not an object");
  match flows_row () with
  | Json.Obj fields ->
      List.iter
        (fun required ->
          let mutilated = Json.Obj (List.remove_assoc required fields) in
          match Report.validate_flows (flows_doc [ mutilated ]) with
          | Ok () -> Alcotest.failf "accepted flows row without %s" required
          | Error msg ->
              Alcotest.(check bool) "error names the field" true
                (Astring_like.contains msg required))
        Report.flows_row_required_fields
  | _ -> Alcotest.fail "flows row is not an object"

let report_validate_flows_smoke_rows () =
  let expect_error name doc needle =
    match Report.validate_flows doc with
    | Ok () -> Alcotest.failf "accepted %s" name
    | Error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "%s error mentions %s (got: %s)" name needle msg)
          true
          (Astring_like.contains msg needle)
  in
  (* A smoke row (the N = 10^6 scale probe) is far from steady state:
     only the byte budget and leak-freedom bind; words/event, slab
     growth and fluid ratios are reported but not gated. *)
  (match
     Report.validate_flows
       (flows_doc
          [
            flows_row ~smoke:true ~fluid_gated:false ~wpe:25.0 ~ft_growths:3
              ~q_growths:5 ~throughput_ratio:0.1 ~queue_ratio:4.0 ();
          ])
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "gated a smoke row on a non-smoke budget: %s" e);
  expect_error "fat smoke row"
    (flows_doc [ flows_row ~smoke:true ~bytes_per_flow:600 () ])
    "exceeds budget";
  expect_error "leaking smoke row"
    (flows_doc [ flows_row ~smoke:true ~leak_free:false () ])
    "leak_free is false"

(* ------------------------------------------------------------------ *)
(* Parallel report validation (BENCH_parallel.json) *)

let parallel_single_run ?(available_domains = 4) ?(speedup = Json.Float 3.4)
    ?(sharded_deterministic = true)
    ?(rows =
      [
        Json.Obj [ ("shards", Json.Int 1); ("wall_s", Json.Float 4.0) ];
        Json.Obj [ ("shards", Json.Int 4); ("wall_s", Json.Float 1.17) ];
      ]) () =
  Json.Obj
    [
      ("scenario", Json.String "Reno/RED");
      ("clients", Json.Int 10_000);
      ("duration_s", Json.Float 2.0);
      ("window_s", Json.Float 0.05);
      ("available_domains", Json.Int available_domains);
      ("min_speedup", Json.Float 3.0);
      ("rows", Json.List rows);
      ("speedup", speedup);
      ("sharded_deterministic", Json.Bool sharded_deterministic);
    ]

let parallel_doc ?(deterministic = true)
    ?(single_run = parallel_single_run ()) () =
  Json.Obj
    [
      ("scenario", Json.String "Reno");
      ("clients", Json.List [ Json.Int 10; Json.Int 20 ]);
      ("replicates", Json.Int 4);
      ("duration_s", Json.Float 10.);
      ("domains", Json.Int 4);
      ("sequential_wall_s", Json.Float 2.0);
      ("parallel_wall_s", Json.Float 0.6);
      ("speedup", Json.Float 3.3);
      ("deterministic", Json.Bool deterministic);
      ("single_run", single_run);
    ]

let report_validate_parallel_accepts () =
  (match Report.validate_parallel (parallel_doc ()) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "rejected a well-formed parallel report: %s" e);
  (* On a small machine the single-run ratio is skipped, not faked:
     null speedup is legal only below 4 available domains. *)
  match
    Report.validate_parallel
      (parallel_doc
         ~single_run:
           (parallel_single_run ~available_domains:1 ~speedup:Json.Null ())
         ())
  with
  | Ok () -> ()
  | Error e -> Alcotest.failf "rejected a skipped single-run speedup: %s" e

let report_validate_parallel_rejects () =
  let expect_error name doc needle =
    match Report.validate_parallel doc with
    | Ok () -> Alcotest.failf "accepted %s" name
    | Error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "%s error mentions %s (got: %s)" name needle msg)
          true
          (Astring_like.contains msg needle)
  in
  expect_error "a non-object" (Json.String "nope") "not a JSON object";
  expect_error "diverged sweep"
    (parallel_doc ~deterministic:false ())
    "deterministic is false";
  expect_error "diverged sharded run"
    (parallel_doc ~single_run:(parallel_single_run ~sharded_deterministic:false ()) ())
    "sharded_deterministic is false";
  expect_error "slow single run"
    (parallel_doc ~single_run:(parallel_single_run ~speedup:(Json.Float 2.0) ()) ())
    "below the committed floor";
  expect_error "null speedup on a big machine"
    (parallel_doc
       ~single_run:(parallel_single_run ~available_domains:8 ~speedup:Json.Null ())
       ())
    "speedup is null";
  expect_error "empty timing rows"
    (parallel_doc ~single_run:(parallel_single_run ~rows:[] ()) ())
    "rows is empty";
  expect_error "row without wall_s"
    (parallel_doc
       ~single_run:
         (parallel_single_run ~rows:[ Json.Obj [ ("shards", Json.Int 1) ] ] ())
       ())
    "numeric shards/wall_s";
  (match parallel_doc () with
  | Json.Obj fields ->
      List.iter
        (fun required ->
          let mutilated = Json.Obj (List.remove_assoc required fields) in
          match Report.validate_parallel mutilated with
          | Ok () -> Alcotest.failf "accepted parallel report without %s" required
          | Error msg ->
              Alcotest.(check bool) "error names the field" true
                (Astring_like.contains msg required))
        Report.parallel_required_fields
  | _ -> Alcotest.fail "parallel doc is not an object");
  match parallel_single_run () with
  | Json.Obj fields ->
      List.iter
        (fun required ->
          let mutilated = Json.Obj (List.remove_assoc required fields) in
          match
            Report.validate_parallel (parallel_doc ~single_run:mutilated ())
          with
          | Ok () ->
              Alcotest.failf "accepted single_run section without %s" required
          | Error msg ->
              Alcotest.(check bool) "error names the field" true
                (Astring_like.contains msg required))
        Report.parallel_single_run_required_fields
  | _ -> Alcotest.fail "single_run section is not an object"

(* ------------------------------------------------------------------ *)
(* Probe + Run integration *)

let small_config clients =
  {
    (Burstcore.Config.with_clients Burstcore.Config.default clients) with
    Burstcore.Config.duration_s = 6.;
    warmup_s = 1.;
  }

let probe_instruments_a_run () =
  let probe = Probe.create () in
  ignore (Burstcore.Run.run ~probe (small_config 5) Burstcore.Scenario.reno);
  Alcotest.(check int) "one run" 1 (Probe.runs_total probe);
  Alcotest.(check bool) "events counted" true (Probe.events_total probe > 0);
  let phases = List.map fst (Perf.durations_s probe.Probe.phases) in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " phase timed") true (List.mem name phases))
    [ "setup"; "run"; "collect" ];
  let hwm =
    Registry.gauge_value (Registry.gauge probe.Probe.registry Probe.m_eq_hwm)
  in
  Alcotest.(check bool) "event-queue hwm positive" true (hwm > 0.);
  match Report.validate (Report.to_json (Report.of_probe probe)) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "run report invalid: %s" e

let probe_bus_sees_packet_and_tcp_events () =
  let probe = Probe.create () in
  let packets = ref 0 and tcp = ref 0 and last_time = ref 0. in
  let monotone = ref true in
  ignore
    (Event_bus.subscribe probe.Probe.bus (fun e ->
         let t = Event_bus.time e in
         if t < !last_time then monotone := false;
         last_time := t;
         match e with
         | Event_bus.Packet _ -> incr packets
         | Event_bus.Tcp _ -> incr tcp
         | _ -> ()));
  (* 20 clients against Table 1's 10-packet buffer forces loss events. *)
  ignore (Burstcore.Run.run ~probe (small_config 20) Burstcore.Scenario.reno);
  Alcotest.(check bool) "packet events flow" true (!packets > 0);
  Alcotest.(check bool) "congestion produces tcp events" true (!tcp > 0);
  Alcotest.(check bool) "timestamps non-decreasing" true !monotone;
  Alcotest.(check int) "published matches deliveries"
    (!packets + !tcp)
    (Event_bus.published probe.Probe.bus)

let probe_run_deterministic_under_telemetry () =
  let run probe = Burstcore.Run.run ?probe (small_config 5) Burstcore.Scenario.reno in
  let bare = run None and probed = run (Some (Probe.create ())) in
  Alcotest.(check int) "delivered unchanged" bare.Burstcore.Metrics.delivered
    probed.Burstcore.Metrics.delivered;
  check_float "loss unchanged" bare.Burstcore.Metrics.loss_pct
    probed.Burstcore.Metrics.loss_pct


(* ------------------------------------------------------------------ *)
(* Flight recorder *)

let rcfg ?(capacity = 16) ?(overflow = Recorder.Drop_oldest)
    ?(lifecycle = true) () =
  { Recorder.capacity; overflow; lifecycle }

(* tick = i so merged order equals write order; every other word is a
   distinct function of i so a shuffled or truncated read-back shows. *)
let fill lane n =
  for i = 0 to n - 1 do
    Recorder.record lane ~tick:i ~kind:(i mod 5) ~flow:(i mod 7) ~a:i
      ~b:(i * 3) ~c:(-i) ~sid:0 ~depth:(i mod 11)
  done

let check_fill_record i buf off =
  Alcotest.(check int) "tick" i buf.(off);
  Alcotest.(check int) "kind" (i mod 5) buf.(off + 1);
  Alcotest.(check int) "flow" (i mod 7) buf.(off + 2);
  Alcotest.(check int) "a" i buf.(off + 3);
  Alcotest.(check int) "b" (i * 3) buf.(off + 4);
  Alcotest.(check int) "c" (-i) buf.(off + 5);
  Alcotest.(check int) "depth" (i mod 11) buf.(off + 7)

let recorder_ring_drops_oldest () =
  let r = Recorder.create (rcfg ()) in
  let lane = Recorder.lane r 0 in
  fill lane 40;
  Alcotest.(check int) "recorded" 40 (Recorder.recorded lane);
  Alcotest.(check int) "retained" 16 (Recorder.retained lane);
  Alcotest.(check int) "dropped" 24 (Recorder.lane_dropped lane);
  Alcotest.(check int) "total_recorded" 40 (Recorder.total_recorded r);
  Alcotest.(check int) "total_dropped" 24 (Recorder.total_dropped r);
  (* The survivors are exactly the newest 16, in order. *)
  let next = ref 24 in
  Recorder.iter_lane lane (fun ~seq buf off ->
      Alcotest.(check int) "seq" !next seq;
      check_fill_record seq buf off;
      incr next);
  Alcotest.(check int) "iterated to the end" 40 !next

let recorder_capacity_rounds_up () =
  (* 100 rounds up to 128, and a tiny request still gets the 16 floor. *)
  let r = Recorder.create (rcfg ~capacity:100 ()) in
  let lane = Recorder.lane r 0 in
  fill lane 130;
  Alcotest.(check int) "retained = rounded capacity" 128
    (Recorder.retained lane);
  let r = Recorder.create (rcfg ~capacity:1 ()) in
  let lane = Recorder.lane r 0 in
  fill lane 20;
  Alcotest.(check int) "floor capacity" 16 (Recorder.retained lane)

let recorder_grow_keeps_everything () =
  let r = Recorder.create (rcfg ~overflow:Recorder.Grow ()) in
  let lane = Recorder.lane r 0 in
  fill lane 100;
  Alcotest.(check int) "retained" 100 (Recorder.retained lane);
  Alcotest.(check int) "dropped" 0 (Recorder.lane_dropped lane);
  let next = ref 0 in
  Recorder.iter_lane lane (fun ~seq buf off ->
      Alcotest.(check int) "seq" !next seq;
      check_fill_record seq buf off;
      incr next);
  Alcotest.(check int) "all records seen" 100 !next

let recorder_merges_lanes_by_tick_then_lane () =
  let r = Recorder.create (rcfg ~overflow:Recorder.Grow ()) in
  let l0 = Recorder.lane r 0 and l1 = Recorder.lane r 1 in
  let put lane tick =
    Recorder.record lane ~tick ~kind:0 ~flow:0 ~a:0 ~b:0 ~c:0 ~sid:0 ~depth:0
  in
  List.iter (put l0) [ 0; 10; 20 ];
  List.iter (put l1) [ 5; 10; 15 ];
  let got = ref [] in
  Recorder.iter_merged r (fun ~lane ~seq:_ buf off ->
      got := (lane, buf.(off)) :: !got);
  (* The tick-10 tie goes to the lower lane id. *)
  Alcotest.(check (list (pair int int)))
    "merge order"
    [ (0, 0); (1, 5); (0, 10); (1, 10); (1, 15); (0, 20) ]
    (List.rev !got)

let with_temp_file f =
  let path = Filename.temp_file "burstsim_rec" ".bin" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let recorder_segment_round_trip () =
  with_temp_file (fun path ->
      let oc = open_out_bin path in
      let r1 = Recorder.create ~label:"first seg" (rcfg ~overflow:Recorder.Grow ()) in
      let sid = Recorder.intern r1 "gateway" in
      Alcotest.(check int) "intern starts after the reserved id" 1 sid;
      Alcotest.(check int) "interning is idempotent" sid
        (Recorder.intern r1 "gateway");
      fill (Recorder.lane r1 0) 50;
      Recorder.write_segment oc r1;
      Alcotest.(check bool) "finished after write" true (Recorder.finished r1);
      (* A second segment appended to the same channel. *)
      let r2 = Recorder.create ~label:"second seg" (rcfg ()) in
      fill (Recorder.lane r2 0) 40;
      Recorder.write_segment oc r2;
      close_out oc;
      let ic = open_in_bin path in
      let segs = Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
          Recorder.read_segments ic)
      in
      match segs with
      | [ s1; s2 ] ->
          Alcotest.(check string) "label 1" "first seg" (Recorder.seg_label s1);
          Alcotest.(check string) "label 2" "second seg" (Recorder.seg_label s2);
          Alcotest.(check string) "intern survives" "gateway"
            (Recorder.seg_lookup s1 sid);
          let next = ref 0 in
          Recorder.iter_segment s1 (fun ~lane ~seq buf off ->
              Alcotest.(check int) "lane" 0 lane;
              Alcotest.(check int) "seq" !next seq;
              check_fill_record seq buf off;
              incr next);
          Alcotest.(check int) "segment 1 complete" 50 !next;
          (* Segment 2 kept only the ring's newest 16, seqs 24..39. *)
          (match Recorder.seg_lanes s2 with
          | [ l ] ->
              Alcotest.(check int) "ring total" 40 (Recorder.read_lane_total l);
              Alcotest.(check int) "ring dropped" 24
                (Recorder.read_lane_dropped l);
              Alcotest.(check int) "ring retained" 16
                (Recorder.read_lane_retained l)
          | ls -> Alcotest.failf "expected 1 lane, got %d" (List.length ls));
          let next = ref 24 in
          Recorder.iter_segment s2 (fun ~lane:_ ~seq buf off ->
              Alcotest.(check int) "ring seq" !next seq;
              check_fill_record seq buf off;
              incr next)
      | segs -> Alcotest.failf "expected 2 segments, got %d" (List.length segs))

let recorder_spill_flushes_chunks () =
  with_temp_file (fun path ->
      let oc = open_out_bin path in
      (* capacity 16 forces several flushes for 100 records. *)
      let r = Recorder.create ~spill:oc ~label:"spilled" (rcfg ()) in
      fill (Recorder.lane r 0) 100;
      Recorder.finish r;
      close_out oc;
      let ic = open_in_bin path in
      let segs = Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
          Recorder.read_segments ic)
      in
      match segs with
      | [ s ] ->
          (match Recorder.seg_lanes s with
          | [ l ] ->
              Alcotest.(check int) "nothing lost" 100
                (Recorder.read_lane_total l);
              Alcotest.(check int) "nothing dropped" 0
                (Recorder.read_lane_dropped l);
              Alcotest.(check int) "all chunks read back" 100
                (Recorder.read_lane_retained l)
          | ls -> Alcotest.failf "expected 1 lane, got %d" (List.length ls));
          let next = ref 0 in
          Recorder.iter_segment s (fun ~lane:_ ~seq buf off ->
              Alcotest.(check int) "seq" !next seq;
              check_fill_record seq buf off;
              incr next);
          Alcotest.(check int) "complete" 100 !next
      | segs -> Alcotest.failf "expected 1 segment, got %d" (List.length segs))

let recorder_read_rejects_garbage () =
  with_temp_file (fun path ->
      let oc = open_out_bin path in
      output_string oc "NOTAFLIGHTRECORDING";
      close_out oc;
      let ic = open_in_bin path in
      Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
          Alcotest.(check bool) "bad magic fails" true
            (try
               ignore (Recorder.read_segments ic);
               false
             with Failure _ -> true)))

(* Word-level codecs, including the corners a simulation never hits. *)

let record_codec_corners () =
  let b = Bytes.create 8 in
  List.iter
    (fun v ->
      Record.put64 b 0 v;
      Alcotest.(check int) "put64/get64" v (Record.get64 b 0);
      Record.set_word b 0 v;
      Alcotest.(check int) "set_word/get_word" v (Record.get_word b 0))
    [ 0; 1; -1; 42; min_int; max_int; Record.no_seq ]

let qcheck_word_codec =
  QCheck.Test.make ~name:"64-bit word round-trip" ~count:500
    QCheck.(frequency [ (4, int); (1, oneofl [ min_int; max_int; 0 ]) ])
    (fun v ->
      let b = Bytes.create 8 in
      Record.put64 b 0 v;
      Record.set_word b 0 v;
      Record.get64 b 0 = v && Record.get_word b 0 = v)

let qcheck_float_parts =
  QCheck.Test.make ~name:"float hi/lo split is exact" ~count:500
    QCheck.(
      frequency
        [ (4, float); (1, oneofl [ 0.; -0.; infinity; neg_infinity; 1e-300 ]) ])
    (fun f ->
      let g = Record.float_of_parts ~hi:(Record.float_hi f) ~lo:(Record.float_lo f) in
      Int64.bits_of_float g = Int64.bits_of_float f)

let qcheck_bits_of_nonneg_int =
  QCheck.Test.make ~name:"integer float-bits match the FPU" ~count:500
    QCheck.(
      frequency
        [
          (4, int_bound ((1 lsl 52) - 1));
          (1, oneofl [ 0; 1; 2; 3; 15; 16; 17; 1 lsl 51; (1 lsl 52) - 1 ]);
        ])
    (fun n ->
      Record.bits_of_nonneg_int n
      = Int64.to_int (Int64.bits_of_float (float_of_int n)))

(* ------------------------------------------------------------------ *)
(* Lifecycle spans *)

let sec t = int_of_float (t *. 1e9)

let spans_from_synthetic_records () =
  let r = Recorder.create (rcfg ~overflow:Recorder.Grow ()) in
  let lane = Recorder.lane r 0 in
  let sid = Recorder.intern r "bottleneck" in
  let packet kind tick uid =
    Recorder.record lane ~tick ~kind ~flow:0 ~a:uid ~b:1000 ~c:0 ~sid ~depth:0
  in
  (* uid 1 sojourns 0.25 s; uid 2 is dropped, so no span; uid 3 has no
     arrival, so its depart is ignored. *)
  packet Record.packet_arrival (sec 1.0) 1;
  packet Record.packet_arrival (sec 1.1) 2;
  packet Record.packet_drop (sec 1.2) 2;
  packet Record.packet_depart (sec 1.25) 1;
  packet Record.packet_depart (sec 1.3) 3;
  (* One 5 ms RTT sample. *)
  Recorder.record lane ~tick:(sec 2.0) ~kind:Record.tcp_rtt ~flow:0
    ~a:5_000_000 ~b:0 ~c:0 ~sid:0 ~depth:0;
  (* Flow 3: slow start 1 s..3 s, then congestion avoidance closed by
     the run_end marker at 4 s. *)
  let phase tick p =
    Recorder.record lane ~tick ~kind:Record.tcp_phase ~flow:3 ~a:p ~b:0 ~c:0
      ~sid:0 ~depth:0
  in
  phase (sec 1.0) Record.phase_slow_start;
  phase (sec 3.0) Record.phase_cong_avoid;
  Recorder.record lane ~tick:(sec 4.0) ~kind:Record.run_end ~flow:(-1) ~a:0
    ~b:0 ~c:0 ~sid:0 ~depth:0;
  let registry = Registry.create () in
  Spans.of_recorder ~registry r;
  let n name =
    match List.assoc_opt name (Spans.histograms registry) with
    | Some h -> Registry.observations h
    | None -> Alcotest.failf "no %s histogram" name
  in
  Alcotest.(check int) "one sojourn sample" 1 (n "packet_sojourn");
  Alcotest.(check int) "one rtt sample" 1 (n "rtt");
  Alcotest.(check int) "one slow-start span" 1 (n "phase:slow_start");
  Alcotest.(check int) "cong-avoid closed at run_end" 1 (n "phase:cong_avoid");
  Alcotest.(check int) "no recovery span" 0 (n "phase:recovery");
  (* Log-scale quantiles land in the right decade. *)
  let p50 name =
    match List.assoc_opt name (Spans.histograms registry) with
    | Some h -> Registry.p50 h
    | None -> 0.
  in
  Alcotest.(check bool) "sojourn ~0.25 s" true
    (p50 "packet_sojourn" > 0.1 && p50 "packet_sojourn" < 0.7);
  Alcotest.(check bool) "rtt ~5 ms" true
    (p50 "rtt" > 0.002 && p50 "rtt" < 0.02);
  (* And the registry renders them as labelled Prometheus histograms. *)
  let text = Registry.to_prometheus registry in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "prometheus contains %S" needle)
        true
        (Astring_like.contains text needle))
    [
      "# HELP trace_packet_sojourn_seconds";
      "# TYPE trace_packet_sojourn_seconds histogram";
      "trace_packet_sojourn_seconds_bucket";
      "trace_packet_sojourn_seconds_sum";
      "trace_packet_sojourn_seconds_count";
      "# TYPE trace_rtt_seconds histogram";
      "# TYPE trace_phase_seconds histogram";
      "trace_phase_seconds_bucket{phase=";
      ",le=\"";
      "phase=\"slow_start\"";
    ]

(* ------------------------------------------------------------------ *)
(* bench-telemetry report schema *)

let bench_tel_doc ?(drop = "") ?(recorder_overhead = 2.0) ?(words = 0.01)
    ?(records = 6509) () =
  let fields =
    [
      ("scenario", Json.String "Reno");
      ("clients", Json.Int 50);
      ("events", Json.Int 60000);
      ("baseline_events_per_sec", Json.Float 3e6);
      ("probed_events_per_sec", Json.Float 2.9e6);
      ("recorded_events_per_sec", Json.Float 2.8e6);
      ("probed_run_s", Json.Float 0.02);
      ("recorded_run_s", Json.Float 0.0205);
      ("probe_overhead_pct", Json.Float 1.0);
      ("probe_overhead_budget_pct", Json.Float 15.0);
      ("recorder_overhead_pct", Json.Float recorder_overhead);
      ("recorder_overhead_budget_pct", Json.Float 8.0);
      ("recorder_minor_words_per_event_delta", Json.Float words);
      ("recorder_words_budget", Json.Float 0.05);
      ("recorder_records", Json.Int records);
      ("recorder_dropped", Json.Int 0);
    ]
  in
  Json.Obj (List.filter (fun (k, _) -> k <> drop) fields)

let report_validate_bench_telemetry_accepts () =
  match Report.validate_bench_telemetry (bench_tel_doc ()) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "rejected a well-formed report: %s" e

let report_validate_bench_telemetry_rejects () =
  let expect_error name doc needle =
    match Report.validate_bench_telemetry doc with
    | Ok () -> Alcotest.failf "accepted %s" name
    | Error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "%s error mentions %s (got: %s)" name needle msg)
          true
          (Astring_like.contains msg needle)
  in
  expect_error "a non-object" (Json.String "nope") "not a JSON object";
  expect_error "a missing field"
    (bench_tel_doc ~drop:"recorder_overhead_pct" ())
    "missing fields: recorder_overhead_pct";
  expect_error "overhead above budget"
    (bench_tel_doc ~recorder_overhead:9.5 ())
    "exceeds budget";
  expect_error "allocating recorder"
    (bench_tel_doc ~words:0.5 ())
    "words/event delta";
  expect_error "a silent recorder" (bench_tel_doc ~records:0 ())
    "recorder_records is zero"

(* ------------------------------------------------------------------ *)
(* Burst: the streaming multi-timescale aggregator *)

(* Deterministic pseudo-random bytes (a 48-bit LCG, high bits): tests
   must not depend on the global [Random] state. *)
let lcg seed =
  let s = ref seed in
  fun () ->
    s := ((!s * 0x5DEECE66D) + 0xB) land 0xFFFF_FFFF_FFFF;
    !s lsr 40

let burst_matches_binned () =
  let next = lcg 42 in
  let times =
    Array.init 4000 (fun _ ->
        1. +. (float_of_int ((next () * 256) + next ()) *. (100. /. 65536.)))
  in
  Array.sort compare times;
  let origin = 1. and width = 0.25 and upto = 101. in
  let binned = Netstats.Binned.create ~origin ~width () in
  let burst = Burst.create ~levels:8 ~origin ~width () in
  Array.iter
    (fun at ->
      Netstats.Binned.record binned at;
      Burst.observe burst at)
    times;
  Burst.advance burst ~upto;
  let counts = Netstats.Binned.counts binned ~upto in
  Alcotest.(check int) "same closed bins" (Array.length counts)
    (Burst.bins burst);
  Alcotest.(check int) "all events counted"
    (int_of_float (Array.fold_left ( +. ) 0. counts))
    (Burst.total burst);
  let s = Netstats.Summary.of_array counts in
  check_float "level-0 mean" s.Netstats.Summary.mean (Burst.scale_mean burst 0);
  check_float "level-0 cov" s.Netstats.Summary.cov
    (Option.get (Burst.cov burst 0))

(* The streaming per-scale moments against the offline estimators on
   the same (integer-valued, so float-exact) count array. *)
let burst_matches_offline_per_scale =
  QCheck.Test.make ~name:"streaming cov/idc match offline per scale" ~count:300
    QCheck.(list_of_size Gen.(int_range 2 200) (int_bound 20))
    (fun counts ->
      let xs = Array.of_list (List.map float_of_int counts) in
      let b = Burst.create ~levels:6 ~origin:0. ~width:1. () in
      Array.iter (Burst.push b) xs;
      let ok = ref true in
      for j = 0 to Burst.levels b - 1 do
        let m = 1 lsl j in
        let nblocks = Array.length xs / m in
        if nblocks >= 2 then begin
          let blocks =
            Array.init nblocks (fun i ->
                let s = ref 0. in
                for k = 0 to m - 1 do
                  s := !s +. xs.((i * m) + k)
                done;
                !s)
          in
          let s = Netstats.Summary.of_array blocks in
          (match Burst.cov b j with
          | Some c ->
              if abs_float (c -. s.Netstats.Summary.cov) > 1e-9 then ok := false
          | None -> if s.Netstats.Summary.mean > 0. then ok := false);
          match
            ( Burst.idc b j,
              try Some (Netstats.Dispersion.idc xs m)
              with Invalid_argument _ -> None )
          with
          | Some a, Some o -> if abs_float (a -. o) > 1e-9 then ok := false
          | None, None -> ()
          | _ -> ok := false
        end
      done;
      !ok)

let burst_haar_energy_direct () =
  let xs = [| 3.; 1.; 4.; 1.; 5.; 9.; 2.; 6. |] in
  let b = Burst.create ~levels:4 ~origin:0. ~width:1. () in
  Array.iter (Burst.push b) xs;
  (* Octave 1 pairs base bins: details (3-1, 4-1, 5-9, 2-6), energy is
     the mean square over the L2 normalization 2^1. *)
  let e1 = ((2. *. 2.) +. (3. *. 3.) +. (4. *. 4.) +. (4. *. 4.)) /. 4. /. 2. in
  Alcotest.(check int) "octave-1 details" 4 (Burst.haar_count b 1);
  check_float "octave-1 energy" e1 (Option.get (Burst.haar_energy b 1));
  (* Octave 2 pairs the level-1 sums (4, 5) and (14, 8), over 2^2. *)
  let e2 = (1. +. 36.) /. 2. /. 4. in
  Alcotest.(check int) "octave-2 details" 2 (Burst.haar_count b 2);
  check_float "octave-2 energy" e2 (Option.get (Burst.haar_energy b 2));
  (* Octave 3 pairs the level-2 sums (9, 22): a single detail. *)
  Alcotest.(check int) "octave-3 details" 1 (Burst.haar_count b 3);
  check_float "octave-3 energy" (169. /. 8.) (Option.get (Burst.haar_energy b 3))

let burst_white_noise_hurst_half () =
  let next = lcg 7 in
  let b = Burst.create ~levels:10 ~origin:0. ~width:1. () in
  for _ = 1 to 8192 do
    Burst.push b (float_of_int (next ()))
  done;
  match Burst.hurst_wavelet b with
  | Some h ->
      Alcotest.(check bool)
        (Printf.sprintf "H %.2f near 0.5" h)
        true
        (abs_float (h -. 0.5) < 0.2)
  | None -> Alcotest.fail "no hurst estimate"

let burst_observe_tick_matches_observe =
  QCheck.Test.make ~name:"observe_tick == observe on converted ticks"
    ~count:300
    QCheck.(list_of_size Gen.(int_range 1 300) (int_bound 2_000_000_000))
    (fun ticks ->
      let ticks = List.sort compare ticks in
      let a = Burst.create ~levels:5 ~origin:0.1 ~width:0.05 () in
      let b = Burst.create ~levels:5 ~origin:0.1 ~width:0.05 () in
      List.iter
        (fun ns ->
          Burst.observe_tick a ns;
          Burst.observe b (float_of_int ns /. 1e9))
        ticks;
      Burst.advance a ~upto:2.5;
      Burst.advance b ~upto:2.5;
      Burst.total a = Burst.total b
      && Burst.bins a = Burst.bins b
      && Burst.cov a 0 = Burst.cov b 0
      && Burst.idc a 2 = Burst.idc b 2)

let osc_sine_flags_flat_does_not () =
  let osc = Burst.Osc.create () in
  for i = 0 to 999 do
    let t = float_of_int i *. 0.01 in
    Burst.Osc.sample osc ~t (10. +. (4. *. sin (2. *. Float.pi *. t)))
  done;
  Alcotest.(check bool) "sine oscillates" true (Burst.Osc.oscillating osc);
  let f = Burst.Osc.frequency_hz osc in
  Alcotest.(check bool)
    (Printf.sprintf "frequency %.2f near 1 Hz" f)
    true
    (f > 0.5 && f < 1.5);
  Alcotest.(check bool) "amplitude above threshold" true
    (Burst.Osc.rel_amplitude osc > 0.2);
  (* Same mean, jitter an order of magnitude under the threshold: the
     detector must stay quiet. *)
  let flat = Burst.Osc.create () in
  let next = lcg 99 in
  for i = 0 to 999 do
    let jitter = float_of_int (next ()) /. 2560. in
    Burst.Osc.sample flat ~t:(float_of_int i *. 0.01) (10. +. jitter)
  done;
  Alcotest.(check bool) "flat plus noise is quiet" false
    (Burst.Osc.oscillating flat)

let burst_record_kinds_roundtrip () =
  List.iter
    (fun k ->
      let label = Record.kind_label k in
      Alcotest.(check (option int)) label (Some k) (Record.kind_of_label label);
      Alcotest.(check bool) (label ^ " is lifecycle") false (Record.is_parity k))
    [
      Record.burst_cov;
      Record.burst_idc;
      Record.burst_hurst;
      Record.burst_osc_amp;
      Record.burst_osc_freq;
    ]

let burst_record_summary_decodes () =
  let r = Recorder.create (rcfg ~capacity:64 ()) in
  let lane = Recorder.lane r 0 in
  let sid = Recorder.intern r "bottleneck" in
  let b = Burst.create ~levels:4 ~origin:0. ~width:1. () in
  Array.iter (Burst.push b) [| 3.; 1.; 4.; 1.; 5.; 9.; 2.; 6. |];
  let osc = Burst.Osc.create () in
  for i = 0 to 99 do
    let t = float_of_int i *. 0.1 in
    Burst.Osc.sample osc ~t (5. +. (3. *. sin t))
  done;
  let s = Burst.summary ~osc b in
  Burst.record_summary lane ~tick:8_000_000_000 ~sid s;
  let counts = Hashtbl.create 8 in
  let cov0 = ref nan in
  Recorder.iter_lane lane (fun ~seq:_ buf off ->
      let k = buf.(off + 1) in
      Hashtbl.replace counts k
        (1 + (try Hashtbl.find counts k with Not_found -> 0));
      if k = Record.burst_cov && buf.(off + 3) = 0 then
        cov0 := Record.float_of_parts ~hi:buf.(off + 4) ~lo:buf.(off + 5));
  let count k = try Hashtbl.find counts k with Not_found -> 0 in
  let populated = List.length s.Burst.scales in
  Alcotest.(check int) "a cov record per populated scale" populated
    (count Record.burst_cov);
  Alcotest.(check int) "an idc record per populated scale" populated
    (count Record.burst_idc);
  Alcotest.(check int) "hurst record iff estimated"
    (if s.Burst.s_hurst = None then 0 else 1)
    (count Record.burst_hurst);
  Alcotest.(check int) "one osc amplitude record" 1
    (count Record.burst_osc_amp);
  Alcotest.(check int) "one osc frequency record" 1
    (count Record.burst_osc_freq);
  let expect =
    match
      (List.find (fun (row : Burst.scale_row) -> row.Burst.level = 0)
         s.Burst.scales)
        .Burst.s_cov
    with
    | Some v -> v
    | None -> nan
  in
  check_float "level-0 cov bits round-trip" expect !cov0

let burst_row ?(side = "stable") ?osc ?(w_q = 1e-4) () =
  let osc = match osc with Some o -> o | None -> side = "unstable" in
  Json.Obj
    [
      ("w_q", Json.Float w_q);
      ("side", Json.String side);
      ("rel_amplitude", Json.Float (if osc then 0.34 else 0.03));
      ("frequency_hz", Json.Float (if osc then 1.9 else 0.5));
      ("crossings", Json.Int (if osc then 227 else 56));
      ("oscillating", Json.Bool osc);
    ]

let burst_doc ?(drop = "") ?(delta = -0.004) ?(cov_err = 0.) ?rows () =
  let rows =
    match rows with
    | Some rows -> rows
    | None -> [ burst_row ~side:"unstable" ~w_q:0.1 (); burst_row () ]
  in
  let fields =
    [
      ("scenario", Json.String "Reno");
      ("clients", Json.Int 50);
      ("reps", Json.Int 3);
      ("events", Json.Int 92322);
      ("probed_run_s", Json.Float 0.05);
      ("burst_run_s", Json.Float 0.052);
      ("burst_overhead_pct", Json.Float 4.5);
      ("burst_minor_words_per_event_delta", Json.Float delta);
      ("burst_words_budget", Json.Float 0.05);
      ("cov_offline", Json.Float 0.241);
      ("cov_streaming", Json.Float 0.241);
      ("cov_abs_err", Json.Float cov_err);
      ("cov_tolerance", Json.Float 1e-6);
      ("red_sweep", Json.Obj [ ("rows", Json.List rows) ]);
    ]
  in
  Json.Obj (List.filter (fun (k, _) -> k <> drop) fields)

let report_validate_burst_accepts () =
  match Report.validate_burst (burst_doc ()) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "rejected a well-formed burst report: %s" e

let report_validate_burst_rejects () =
  let expect_error name doc needle =
    match Report.validate_burst doc with
    | Ok () -> Alcotest.failf "accepted %s" name
    | Error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "%s error mentions %s (got: %s)" name needle msg)
          true
          (Astring_like.contains msg needle)
  in
  expect_error "a non-object" (Json.String "nope") "not a JSON object";
  expect_error "a missing field"
    (burst_doc ~drop:"cov_abs_err" ())
    "missing fields: cov_abs_err";
  expect_error "words delta over budget" (burst_doc ~delta:0.2 ())
    "exceeds budget";
  expect_error "streaming cov drift" (burst_doc ~cov_err:1e-3 ())
    "c.o.v. error";
  expect_error "verdict contradicting side"
    (burst_doc
       ~rows:[ burst_row ~side:"unstable" ~osc:false ~w_q:0.1 (); burst_row () ]
       ())
    "contradicts side";
  expect_error "missing stable row"
    (burst_doc ~rows:[ burst_row ~side:"unstable" ~w_q:0.1 () ] ())
    "no stable row";
  expect_error "empty sweep" (burst_doc ~rows:[] ()) "rows is empty"

(* --- hybrid fluid/packet report ----------------------------------- *)

let hybrid_record_kinds_roundtrip () =
  List.iter
    (fun k ->
      let label = Record.kind_label k in
      Alcotest.(check (option int)) label (Some k) (Record.kind_of_label label);
      Alcotest.(check bool) (label ^ " is lifecycle") false (Record.is_parity k))
    [ Record.hybrid_bg_window; Record.hybrid_bg_queue; Record.hybrid_bg_rate ];
  (* End-of-run summary records carry (background, value, steps) and
     decode through the self-describing JSON path. *)
  let r = Recorder.create (rcfg ~capacity:16 ()) in
  let lane = Recorder.lane r 0 in
  let sid = Recorder.intern r "hybrid run" in
  Recorder.record lane ~tick:1_000_000 ~kind:Record.hybrid_bg_queue ~flow:(-1)
    ~a:999_900
    ~b:(Record.float_hi 21237.5)
    ~c:(Record.float_lo 21237.5)
    ~sid ~depth:4242;
  Recorder.iter_lane lane (fun ~seq:_ buf off ->
      let j = Record.json_of_record ~lookup:(fun _ -> "hybrid run") buf off in
      Alcotest.(check bool) "event tag" true
        (Json.member "event" j = Some (Json.String "hybrid"));
      Alcotest.(check bool) "kind tag" true
        (Json.member "kind" j = Some (Json.String "bg_queue"));
      Alcotest.(check bool) "background flows" true
        (Json.member "background" j = Some (Json.Int 999_900));
      Alcotest.(check bool) "steps" true
        (Json.member "steps" j = Some (Json.Int 4242));
      match Option.bind (Json.member "value" j) Json.to_float with
      | Some v -> check_float "value bits round-trip" 21237.5 v
      | None -> Alcotest.fail "value missing")

let hybrid_validation_row ?(ratio = 1.15) ?(queue_ratio = 1.5)
    ?(loss_err = 0.017) ?(event_ratio = 17.) ?(drop = "") () =
  let fields =
    [
      ("flows", Json.Int 1_000);
      ("background", Json.Int 950);
      ("packet_throughput_pps", Json.Float 14.6);
      ("hybrid_throughput_pps", Json.Float (14.6 *. ratio));
      ("throughput_ratio", Json.Float ratio);
      ("packet_queue_mean", Json.Float 1693.);
      ("hybrid_queue_mean", Json.Float (1693. *. queue_ratio));
      ("queue_ratio", Json.Float queue_ratio);
      ("packet_loss_rate", Json.Float 0.041);
      ("hybrid_loss_rate", Json.Float (0.041 +. loss_err));
      ("loss_abs_err", Json.Float loss_err);
      ("event_ratio", Json.Float event_ratio);
    ]
  in
  Json.Obj (List.filter (fun (k, _) -> k <> drop) fields)

let hybrid_converged ?(leak_free = true) ?(growths = 0) ?(smoke = false)
    ?(work_ratio = Json.Float 1200.) ?(drop = "") () =
  let fields =
    [
      ("flows", Json.Int 1_000_000);
      ("foreground", Json.Int 100);
      ("background", Json.Int 999_900);
      ("duration_s", Json.Float 10.);
      ("events", Json.Int 170_310);
      ("wall_s", Json.Float 1.9);
      ("events_per_sec", Json.Float 89_000.);
      ("bg_window_mean", Json.Float 7.1);
      ("bg_queue_mean", Json.Float 21237.5);
      ("slowdown_mean", Json.Float 3245.);
      ("flow_table_growths", Json.Int growths);
      ("queue_growths", Json.Int growths);
      ("leak_free", Json.Bool leak_free);
      ("smoke", Json.Bool smoke);
      ("work_ratio", work_ratio);
    ]
  in
  Json.Obj (List.filter (fun (k, _) -> k <> drop) fields)

let hybrid_doc ?(drop = "") ?rows ?converged ?sweep_rows
    ?(wq_critical = 7.5e-6) () =
  let rows =
    match rows with Some r -> r | None -> [ hybrid_validation_row () ]
  in
  let converged =
    match converged with Some c -> c | None -> hybrid_converged ()
  in
  let sweep_rows =
    match sweep_rows with
    | Some r -> r
    | None -> [ burst_row ~side:"unstable" ~w_q:7.5e-4 (); burst_row () ]
  in
  let fields =
    [
      ("scenario", Json.String "Reno/RED");
      ("foreground", Json.Int 50);
      ("throughput_ratio_min", Json.Float 0.8);
      ("throughput_ratio_max", Json.Float 1.25);
      ("queue_ratio_min", Json.Float 0.5);
      ("queue_ratio_max", Json.Float 2.0);
      ("loss_abs_tol", Json.Float 0.025);
      ("work_ratio_min", Json.Float 10.);
      ("validation", Json.List rows);
      ("converged", converged);
      ( "stability_sweep",
        Json.Obj
          [
            ("wq_critical", Json.Float wq_critical);
            ("rows", Json.List sweep_rows);
          ] );
    ]
  in
  Json.Obj (List.filter (fun (k, _) -> k <> drop) fields)

let report_validate_hybrid_accepts () =
  (match Report.validate_hybrid (hybrid_doc ()) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "rejected a well-formed hybrid report: %s" e);
  (* A smoke-mode converged row may carry a null work ratio: the pure
     packet reference at N = 10^6 is only run in full mode. *)
  match
    Report.validate_hybrid
      (hybrid_doc
         ~converged:(hybrid_converged ~smoke:true ~work_ratio:Json.Null ())
         ())
  with
  | Ok () -> ()
  | Error e -> Alcotest.failf "rejected a smoke converged row: %s" e

let report_validate_hybrid_rejects () =
  let expect_error name doc needle =
    match Report.validate_hybrid doc with
    | Ok () -> Alcotest.failf "accepted %s" name
    | Error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "%s error mentions %s (got: %s)" name needle msg)
          true
          (Astring_like.contains msg needle)
  in
  expect_error "a non-object" (Json.String "nope") "not a JSON object";
  List.iter
    (fun f -> expect_error ("dropping " ^ f) (hybrid_doc ~drop:f ()) f)
    Report.hybrid_required_fields;
  List.iter
    (fun f ->
      expect_error
        ("dropping row field " ^ f)
        (hybrid_doc ~rows:[ hybrid_validation_row ~drop:f () ] ())
        f)
    Report.hybrid_validation_row_required_fields;
  List.iter
    (fun f ->
      expect_error
        ("dropping converged field " ^ f)
        (hybrid_doc ~converged:(hybrid_converged ~drop:f ()) ())
        f)
    Report.hybrid_converged_required_fields;
  expect_error "empty validation" (hybrid_doc ~rows:[] ()) "validation is empty";
  expect_error "throughput ratio outside band"
    (hybrid_doc ~rows:[ hybrid_validation_row ~ratio:1.6 () ] ())
    "outside";
  expect_error "queue ratio outside band"
    (hybrid_doc ~rows:[ hybrid_validation_row ~queue_ratio:0.2 () ] ())
    "outside";
  expect_error "loss error over tolerance"
    (hybrid_doc ~rows:[ hybrid_validation_row ~loss_err:0.08 () ] ())
    "exceeds tolerance";
  expect_error "hybrid doing more work than packet"
    (hybrid_doc ~rows:[ hybrid_validation_row ~event_ratio:0.5 () ] ())
    "more work";
  expect_error "leaking converged run"
    (hybrid_doc ~converged:(hybrid_converged ~leak_free:false ()) ())
    "leak_free is false";
  expect_error "grown slabs"
    (hybrid_doc ~converged:(hybrid_converged ~growths:2 ()) ())
    "slabs grew";
  expect_error "work ratio below floor"
    (hybrid_doc
       ~converged:(hybrid_converged ~work_ratio:(Json.Float 3.) ())
       ())
    "below the committed floor";
  expect_error "null work ratio outside smoke mode"
    (hybrid_doc ~converged:(hybrid_converged ~work_ratio:Json.Null ()) ())
    "null outside smoke";
  expect_error "non-positive critical gain"
    (hybrid_doc ~wq_critical:0. ())
    "not positive";
  expect_error "sweep verdict contradicting side"
    (hybrid_doc
       ~sweep_rows:
         [ burst_row ~side:"unstable" ~osc:false ~w_q:7.5e-4 (); burst_row () ]
       ())
    "contradicts side";
  expect_error "sweep missing stable row"
    (hybrid_doc ~sweep_rows:[ burst_row ~side:"unstable" ~w_q:7.5e-4 () ] ())
    "no stable row";
  expect_error "empty sweep"
    (hybrid_doc ~sweep_rows:[] ())
    "rows is empty"

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [
    ( "telemetry.registry",
      [
        Alcotest.test_case "get-or-create" `Quick registry_get_or_create;
        Alcotest.test_case "labels canonicalised" `Quick registry_labels_canonicalised;
        Alcotest.test_case "kind mismatch raises" `Quick registry_kind_mismatch_raises;
        Alcotest.test_case "invalid name raises" `Quick registry_invalid_name_raises;
        Alcotest.test_case "gauge set_max / add" `Quick registry_gauge_set_max;
        Alcotest.test_case "histogram quantiles" `Quick registry_histogram_quantiles;
        Alcotest.test_case "json round-trip" `Quick registry_json_roundtrip;
        Alcotest.test_case "prometheus text" `Quick registry_prometheus_text;
        Alcotest.test_case "merge: counters sum" `Quick registry_merge_counters_sum;
        Alcotest.test_case "merge: gauge rules" `Quick registry_merge_gauge_rules;
        Alcotest.test_case "merge: histograms combine" `Quick
          registry_merge_histograms_combine;
        Alcotest.test_case "merge: layout mismatch raises" `Quick
          registry_merge_layout_mismatch_raises;
        Alcotest.test_case "probe merge report validates" `Quick
          probe_merge_report_validates;
      ] );
    ( "telemetry.event_bus",
      [
        Alcotest.test_case "pub/sub order" `Quick bus_pub_sub_order;
        Alcotest.test_case "published without subscribers" `Quick
          bus_published_without_subscribers;
        Alcotest.test_case "ndjson round-trip" `Quick bus_ndjson_roundtrip;
        Alcotest.test_case "event field first" `Quick bus_ndjson_event_field_first;
        Alcotest.test_case "rejects garbage" `Quick bus_of_json_rejects_garbage;
      ]
      @ qsuite [ bus_roundtrip_property ] );
    ( "telemetry.perf",
      [ Alcotest.test_case "phases accumulate" `Quick perf_phases_accumulate ] );
    ( "telemetry.progress",
      [
        Alcotest.test_case "progress lines" `Quick progress_lines;
        Alcotest.test_case "formatting" `Quick progress_formatting;
      ] );
    ( "telemetry.report",
      [
        Alcotest.test_case "of_probe validates" `Quick report_of_probe_validates;
        Alcotest.test_case "validate rejects" `Quick report_validate_rejects;
        Alcotest.test_case "alloc schema accepts" `Quick report_validate_alloc_accepts;
        Alcotest.test_case "alloc schema rejects" `Quick report_validate_alloc_rejects;
        Alcotest.test_case "flows schema accepts" `Quick
          report_validate_flows_accepts;
        Alcotest.test_case "flows schema rejects" `Quick
          report_validate_flows_rejects;
        Alcotest.test_case "flows smoke rows gated lightly" `Quick
          report_validate_flows_smoke_rows;
        Alcotest.test_case "parallel schema accepts" `Quick
          report_validate_parallel_accepts;
        Alcotest.test_case "parallel schema rejects" `Quick
          report_validate_parallel_rejects;
        Alcotest.test_case "bench-telemetry schema accepts" `Quick
          report_validate_bench_telemetry_accepts;
        Alcotest.test_case "bench-telemetry schema rejects" `Quick
          report_validate_bench_telemetry_rejects;
        Alcotest.test_case "burst schema accepts" `Quick
          report_validate_burst_accepts;
        Alcotest.test_case "burst schema rejects" `Quick
          report_validate_burst_rejects;
        Alcotest.test_case "hybrid record kinds round-trip" `Quick
          hybrid_record_kinds_roundtrip;
        Alcotest.test_case "hybrid schema accepts" `Quick
          report_validate_hybrid_accepts;
        Alcotest.test_case "hybrid schema rejects" `Quick
          report_validate_hybrid_rejects;
      ] );
    ( "telemetry.burst",
      [
        Alcotest.test_case "observe matches Binned" `Quick burst_matches_binned;
        Alcotest.test_case "haar energies by hand" `Quick
          burst_haar_energy_direct;
        Alcotest.test_case "white noise H ~ 0.5" `Quick
          burst_white_noise_hurst_half;
        Alcotest.test_case "osc: sine flags, flat does not" `Quick
          osc_sine_flags_flat_does_not;
        Alcotest.test_case "record kinds round-trip" `Quick
          burst_record_kinds_roundtrip;
        Alcotest.test_case "record_summary decodes" `Quick
          burst_record_summary_decodes;
      ]
      @ qsuite
          [ burst_matches_offline_per_scale; burst_observe_tick_matches_observe ]
    );
    ( "telemetry.recorder",
      [
        Alcotest.test_case "ring drops oldest" `Quick recorder_ring_drops_oldest;
        Alcotest.test_case "capacity rounds up" `Quick
          recorder_capacity_rounds_up;
        Alcotest.test_case "grow keeps everything" `Quick
          recorder_grow_keeps_everything;
        Alcotest.test_case "merge by (tick, lane, seq)" `Quick
          recorder_merges_lanes_by_tick_then_lane;
        Alcotest.test_case "segment round-trip" `Quick
          recorder_segment_round_trip;
        Alcotest.test_case "spill flushes chunks" `Quick
          recorder_spill_flushes_chunks;
        Alcotest.test_case "read rejects garbage" `Quick
          recorder_read_rejects_garbage;
        Alcotest.test_case "codec corners" `Quick record_codec_corners;
      ]
      @ qsuite
          [ qcheck_word_codec; qcheck_float_parts; qcheck_bits_of_nonneg_int ]
    );
    ( "telemetry.spans",
      [
        Alcotest.test_case "synthetic records to histograms" `Quick
          spans_from_synthetic_records;
      ] );
    ( "telemetry.integration",
      [
        Alcotest.test_case "probe instruments a run" `Quick probe_instruments_a_run;
        Alcotest.test_case "bus sees packet and tcp events" `Quick
          probe_bus_sees_packet_and_tcp_events;
        Alcotest.test_case "telemetry does not perturb results" `Quick
          probe_run_deterministic_under_telemetry;
      ] );
  ]
