(* Tests for the experiment framework: config, scenarios, analytic
   baselines, fairness, dumbbell wiring, and end-to-end runs. *)

open Burstcore

let check_float = Alcotest.(check (float 1e-9))
let check_close tol = Alcotest.(check (float tol))

(* A small, fast configuration for integration tests. *)
let tiny ?(clients = 4) ?(duration = 30.) ?(warmup = 5.) () =
  {
    (Config.with_clients Config.default clients) with
    Config.duration_s = duration;
    warmup_s = warmup;
  }

(* ------------------------------------------------------------------ *)
(* Config *)

let config_derived_quantities () =
  let cfg = Config.default in
  check_float "rtt_prop" 1.0 (Config.rtt_prop_s cfg);
  check_close 0.1 "saturation ~41.7" 41.7 (Config.saturation_clients cfg);
  let cfg40 = Config.with_clients cfg 40 in
  check_close 1e-6 "offered load fraction" 0.96 (Config.offered_load_fraction cfg40)

let config_rejects_zero_clients () =
  Alcotest.check_raises "clients" (Invalid_argument "Config.with_clients: clients < 1")
    (fun () -> ignore (Config.with_clients Config.default 0))

let config_validate_catches_bad_fields () =
  let ok = tiny () in
  Config.validate ok;
  let bad name cfg =
    Alcotest.check_raises name (Invalid_argument ("Config.validate: " ^ name))
      (fun () -> Config.validate cfg)
  in
  bad "warmup_s" { ok with Config.warmup_s = ok.Config.duration_s };
  bad "red thresholds" { ok with Config.red_max_th = ok.Config.red_min_th };
  bad "packet_bytes" { ok with Config.packet_bytes = 20 };
  bad "adv_window" { ok with Config.adv_window = 0 }

let config_pp_mentions_values () =
  let s = Format.asprintf "%a" Config.pp Config.default in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("table contains " ^ needle) true
        (Astring_like.contains s needle))
    [ "5 Mbps"; "1500 bytes"; "50 packets"; "20 packets" ]

(* ------------------------------------------------------------------ *)
(* Scenario *)

let scenario_ecn_labels () =
  Alcotest.(check string) "reno/ecn" "Reno/ECN" (Scenario.label Scenario.reno_ecn);
  Alcotest.(check string) "vegas/ared" "Vegas/ARED" (Scenario.label Scenario.vegas_ared);
  Alcotest.(check string) "sack" "SACK" (Scenario.label Scenario.sack);
  Alcotest.(check string) "sack/red" "SACK/RED" (Scenario.label Scenario.sack_red)

let run_ecn_end_to_end () =
  (* Heavy enough load that RED marks; ECN scenarios must react without
     losing goodput. *)
  let cfg = tiny ~clients:45 ~duration:60. ~warmup:10. () in
  let m = Run.run cfg Scenario.reno_ecn in
  Alcotest.(check bool) "marks applied" true (m.Metrics.ecn_marks > 0);
  Alcotest.(check bool) "senders reacted" true (m.Metrics.ecn_reactions > 0);
  Alcotest.(check bool) "delivering" true (m.Metrics.delivered > 10_000);
  (* Plain scenarios never mark. *)
  let plain = Run.run cfg Scenario.reno in
  Alcotest.(check int) "no marks on fifo" 0 plain.Metrics.ecn_marks;
  Alcotest.(check int) "no reactions on fifo" 0 plain.Metrics.ecn_reactions

let run_sack_end_to_end () =
  let cfg = tiny ~clients:45 ~duration:60. ~warmup:10. () in
  let m = Run.run cfg Scenario.sack in
  Alcotest.(check bool) "delivers" true (m.Metrics.delivered > 10_000);
  let reno = Run.run cfg Scenario.reno in
  Alcotest.(check bool)
    (Printf.sprintf "sack timeouts %d <= reno timeouts %d" m.Metrics.timeouts
       reno.Metrics.timeouts)
    true
    (m.Metrics.timeouts <= reno.Metrics.timeouts)

let run_ared_end_to_end () =
  let cfg = tiny ~clients:45 ~duration:60. ~warmup:10. () in
  let m = Run.run cfg Scenario.reno_ared in
  Alcotest.(check bool) "delivers" true (m.Metrics.delivered > 10_000);
  Alcotest.(check int) "ared does not mark" 0 m.Metrics.ecn_marks

let scenario_labels () =
  Alcotest.(check string) "udp" "UDP" (Scenario.label Scenario.udp);
  Alcotest.(check string) "reno" "Reno" (Scenario.label Scenario.reno);
  Alcotest.(check string) "reno/red" "Reno/RED" (Scenario.label Scenario.reno_red);
  Alcotest.(check string) "delack" "Reno/DelayAck" (Scenario.label Scenario.reno_delack);
  Alcotest.(check string) "vegas/red" "Vegas/RED" (Scenario.label Scenario.vegas_red);
  Alcotest.(check string) "newreno" "NewReno" (Scenario.label Scenario.newreno)

let scenario_series_membership () =
  Alcotest.(check int) "six paper series" 6 (List.length Scenario.paper_series);
  Alcotest.(check int) "five tcp series" 5 (List.length Scenario.tcp_series);
  Alcotest.(check bool) "udp not in tcp series" false
    (List.exists (Scenario.equal Scenario.udp) Scenario.tcp_series);
  Alcotest.(check bool) "udp is not tcp" false (Scenario.is_tcp Scenario.udp);
  Alcotest.(check bool) "vegas is tcp" true (Scenario.is_tcp Scenario.vegas)

(* ------------------------------------------------------------------ *)
(* Analytic *)

let analytic_poisson_cov () =
  (* N=25 clients, 10 pkt/s, 1 s bin: mean 250, cov = 1/sqrt(250). *)
  let cfg = Config.with_clients Config.default 25 in
  check_close 1e-9 "cov" (1. /. sqrt 250.) (Analytic.poisson_cov cfg);
  check_close 1e-9 "mean" 250. (Analytic.poisson_mean_per_bin cfg)

let analytic_cov_decreases_with_clients () =
  let cov n = Analytic.poisson_cov (Config.with_clients Config.default n) in
  Alcotest.(check bool) "monotone" true (cov 10 > cov 20 && cov 20 > cov 40)

(* ------------------------------------------------------------------ *)
(* Fairness *)

let fairness_jain () =
  check_float "equal shares" 1. (Fairness.jain [| 5.; 5.; 5. |]);
  check_float "all zero" 1. (Fairness.jain [| 0.; 0. |]);
  (* One user hogging: 1/n *)
  check_float "monopoly" 0.25 (Fairness.jain [| 1.; 0.; 0.; 0. |]);
  Alcotest.(check bool) "skewed below 1" true (Fairness.jain [| 9.; 1. |] < 1.)

let fairness_max_min () =
  check_float "equal" 1. (Fairness.max_min_ratio [| 2.; 2. |]);
  check_float "ratio" 3. (Fairness.max_min_ratio [| 6.; 2. |]);
  Alcotest.(check bool) "zero min" true
    (Fairness.max_min_ratio [| 1.; 0. |] = infinity)

(* ------------------------------------------------------------------ *)
(* Dumbbell wiring *)

let dumbbell_tcp_roundtrip () =
  let cfg = tiny ~clients:2 () in
  let net = Dumbbell.create cfg Scenario.reno in
  (* Submit directly, no sources. *)
  Dumbbell.sink net 0 5;
  Dumbbell.sink net 1 3;
  Sim_engine.Scheduler.run
    ~until:(Sim_engine.Time.of_sec 30.)
    (Dumbbell.scheduler net);
  Alcotest.(check (array int)) "per-client delivery" [| 5; 3 |]
    (Dumbbell.per_client_delivered net);
  Alcotest.(check int) "total" 8 (Dumbbell.delivered_total net);
  Alcotest.(check bool) "tcp sender exposed" true (Dumbbell.tcp_sender net 0 <> None)

let dumbbell_udp_roundtrip () =
  let cfg = tiny ~clients:3 () in
  let net = Dumbbell.create cfg Scenario.udp in
  List.iter (fun i -> Dumbbell.sink net i 10) [ 0; 1; 2 ];
  Sim_engine.Scheduler.run
    ~until:(Sim_engine.Time.of_sec 10.)
    (Dumbbell.scheduler net);
  Alcotest.(check int) "all arrive" 30 (Dumbbell.delivered_total net);
  Alcotest.(check bool) "no tcp sender" true (Dumbbell.tcp_sender net 0 = None);
  Alcotest.(check int) "zero tcp stats" 0
    (Dumbbell.tcp_stats_total net).Transport.Tcp_stats.segments_sent

let dumbbell_delivery_latency () =
  (* One packet: 2 serializations (1500B at 10 and 5 Mbps) + 0.5 s one-way
     propagation. *)
  let cfg = tiny ~clients:1 () in
  let net = Dumbbell.create cfg Scenario.udp in
  Dumbbell.sink net 0 1;
  let sched = Dumbbell.scheduler net in
  Sim_engine.Scheduler.run sched;
  let expected = 0.25 +. 0.25 +. (1500. *. 8. /. 10e6) +. (1500. *. 8. /. 5e6) in
  (* The run clock stops at the last event = delivery time. *)
  check_close 1e-6 "one-way latency" expected
    (Sim_engine.Time.to_sec (Sim_engine.Scheduler.now sched));
  Alcotest.(check int) "delivered" 1 (Dumbbell.delivered_total net)

(* ------------------------------------------------------------------ *)
(* Run + Metrics *)

let run_every_scenario_smoke () =
  (* One tiny run of every scenario the library exposes: builds, delivers,
     and respects conservation. *)
  let cfg = tiny ~clients:5 ~duration:30. ~warmup:5. () in
  List.iter
    (fun scenario ->
      let m = Run.run cfg scenario in
      let label = Scenario.label m.Metrics.scenario in
      Alcotest.(check bool) (label ^ " delivers") true (m.Metrics.delivered > 500);
      Alcotest.(check bool)
        (label ^ " conservation")
        true
        (m.Metrics.delivered <= m.Metrics.gateway_arrivals))
    [
      Scenario.udp; Scenario.reno; Scenario.reno_red; Scenario.reno_delack;
      Scenario.vegas; Scenario.vegas_red; Scenario.tahoe; Scenario.newreno;
      Scenario.sack; Scenario.sack_red; Scenario.reno_ecn; Scenario.vegas_ecn;
      Scenario.reno_ared; Scenario.vegas_ared; Scenario.reno_sfq;
      Scenario.vegas_sfq;
    ]

let run_conservation () =
  let cfg = tiny ~clients:6 ~duration:60. () in
  let m = Run.run cfg Scenario.reno in
  (* Conservation: everything the gateway accepted either reached the
     server or is still in flight; with a drained run, delivered (plus
     receiver-side duplicates) accounts for arrivals - drops. *)
  Alcotest.(check bool) "arrivals >= delivered" true
    (m.Metrics.gateway_arrivals >= m.Metrics.delivered);
  Alcotest.(check bool) "sent >= offered - backlog" true
    (m.Metrics.segments_sent <= m.Metrics.offered + m.Metrics.retransmits);
  Alcotest.(check bool) "offered positive" true (m.Metrics.offered > 0);
  Alcotest.(check bool) "cov positive" true (m.Metrics.cov > 0.)

let run_uncongested_delivers_everything () =
  let cfg = tiny ~clients:4 ~duration:60. () in
  let m = Run.run cfg Scenario.reno in
  (* 4 clients: far below saturation; everything delivered except what is
     still in flight at the horizon (~1 s RTT x 40 pkt/s). *)
  Alcotest.(check bool)
    (Printf.sprintf "delivered %d of %d" m.Metrics.delivered m.Metrics.offered)
    true
    (m.Metrics.delivered >= m.Metrics.offered - 60);
  Alcotest.(check (float 0.01)) "no loss" 0. m.Metrics.loss_pct;
  Alcotest.(check int) "no timeouts" 0 m.Metrics.timeouts

let run_udp_cov_tracks_poisson () =
  let cfg = tiny ~clients:10 ~duration:120. ~warmup:10. () in
  let m = Run.run cfg Scenario.udp in
  let ratio = m.Metrics.cov /. m.Metrics.analytic_cov in
  Alcotest.(check bool)
    (Printf.sprintf "udp cov ratio %.3f in [0.8, 1.25]" ratio)
    true
    (ratio > 0.8 && ratio < 1.25)

let run_overload_saturates_throughput () =
  let cfg = tiny ~clients:60 ~duration:40. ~warmup:10. () in
  let m = Run.run cfg Scenario.udp in
  (* Bottleneck 416.7 pkt/s; UDP offered ~600 pkt/s: deliveries pin to
     capacity and the surplus is dropped. *)
  let capacity = 416.7 *. cfg.Config.duration_s in
  Alcotest.(check bool) "throughput at capacity" true
    (float_of_int m.Metrics.delivered > 0.9 *. capacity
    && float_of_int m.Metrics.delivered <= 1.02 *. capacity);
  Alcotest.(check bool) "substantial loss" true (m.Metrics.loss_pct > 10.)

let run_traces_requested_clients () =
  let cfg = tiny ~clients:3 ~duration:20. () in
  let m = Run.run ~trace_clients:[ 0; 2 ] cfg Scenario.vegas in
  Alcotest.(check (list int)) "trace ids" [ 0; 2 ] (List.map fst m.Metrics.cwnd_traces);
  List.iter
    (fun (_, s) ->
      Alcotest.(check bool) "trace non-empty" true (Netstats.Series.length s > 0))
    m.Metrics.cwnd_traces

let run_cov_ci_present () =
  let cfg = tiny ~clients:10 ~duration:120. ~warmup:10. () in
  let m = Run.run cfg Scenario.udp in
  Alcotest.(check bool) "ci positive" true (m.Metrics.cov_ci95 > 0.);
  (* The Poisson truth should be inside the (generous) interval. *)
  Alcotest.(check bool)
    (Printf.sprintf "|%.4f - %.4f| < 3x%.4f" m.Metrics.cov m.Metrics.analytic_cov
       m.Metrics.cov_ci95)
    true
    (Float.abs (m.Metrics.cov -. m.Metrics.analytic_cov) < 3. *. m.Metrics.cov_ci95)

let run_trace_digest_pinned () =
  (* Trace-equivalence gate for the packet-pool refactor: the full NDJSON
     event stream of a reference run is pinned by digest. Any change to
     packet identity, event ordering, or numeric paths that alters a single
     byte of the trace fails here. The digest was recorded from the
     heap-packet implementation before pooling, so passing means the pooled
     engine is event-for-event identical to it. *)
  let cfg = tiny ~clients:4 ~duration:5. ~warmup:1. () in
  let probe = Telemetry.Probe.create () in
  let buf = Buffer.create (1 lsl 15) in
  ignore
    (Telemetry.Event_bus.subscribe probe.Telemetry.Probe.bus (fun ev ->
         Buffer.add_string buf (Telemetry.Event_bus.to_ndjson ev);
         Buffer.add_char buf '\n'));
  ignore (Run.run ~probe cfg Scenario.reno);
  let trace = Buffer.contents buf in
  Alcotest.(check int) "trace length" 28432 (String.length trace);
  Alcotest.(check string) "trace digest" "06737bcfca22b5f3d9986c42f3195862"
    (Digest.to_hex (Digest.string trace))

let run_trace_digest_pinned_flow_table () =
  (* Second trace-equivalence gate, recorded from the group/flow-table
     transport engine right after the struct-of-arrays conversion. It
     exercises the paths the first pin does not: delayed ACKs (the
     receiver's 200 ms keyed timer) and RED (gateway marks/drops feeding
     ECE echoes and recovery). Together the two pins bracket the
     conversion: the first proves the slab engine matches the
     record-per-flow engine byte for byte, this one freezes the slab
     engine's own behaviour for future refactors. *)
  let cfg = tiny ~clients:4 ~duration:5. ~warmup:1. () in
  let scenario =
    {
      Scenario.transport = Scenario.Tcp { cc = Scenario.Reno; delayed_ack = true };
      gateway = Scenario.Red;
    }
  in
  let probe = Telemetry.Probe.create () in
  let buf = Buffer.create (1 lsl 15) in
  ignore
    (Telemetry.Event_bus.subscribe probe.Telemetry.Probe.bus (fun ev ->
         Buffer.add_string buf (Telemetry.Event_bus.to_ndjson ev);
         Buffer.add_char buf '\n'));
  ignore (Run.run ~probe cfg scenario);
  let trace = Buffer.contents buf in
  Alcotest.(check int) "trace length" 28416 (String.length trace);
  Alcotest.(check string) "trace digest" "9fa84ea08a69d641d283c03c86f01029"
    (Digest.to_hex (Digest.string trace))

let run_trace_digest_pinned_sharded () =
  (* Third trace-equivalence gate, for the sharded conservative-PDES
     engine: the same Reno/RED + delayed-ACK workload as the flow-table
     pin, run under [shards >= 1], with the full NDJSON stream pinned at
     every shard count. The sharded engine intentionally does NOT match
     the classic pin above (its window barriers order same-tick events
     by (time, flow) instead of global insertion order), so it carries
     its own digest — and the same digest must come out of 1, 2 and 4
     shards, which is the engine's bit-identity promise at the trace
     level, not just the metrics level. *)
  let scenario =
    {
      Scenario.transport = Scenario.Tcp { cc = Scenario.Reno; delayed_ack = true };
      gateway = Scenario.Red;
    }
  in
  List.iter
    (fun shards ->
      let cfg = { (tiny ~clients:4 ~duration:5. ~warmup:1. ()) with Config.shards } in
      let probe = Telemetry.Probe.create () in
      let buf = Buffer.create (1 lsl 15) in
      ignore
        (Telemetry.Event_bus.subscribe probe.Telemetry.Probe.bus (fun ev ->
             Buffer.add_string buf (Telemetry.Event_bus.to_ndjson ev);
             Buffer.add_char buf '\n'));
      ignore (Run.run ~probe cfg scenario);
      let trace = Buffer.contents buf in
      let label fmt = Printf.sprintf fmt shards in
      Alcotest.(check int) (label "trace length, %d shard(s)") 30424
        (String.length trace);
      Alcotest.(check string)
        (label "trace digest, %d shard(s)")
        "09da9bba46244c470fb87f871e2e72bd"
        (Digest.to_hex (Digest.string trace)))
    [ 1; 2; 4 ]

let run_recorder_parity_with_live_tracer () =
  (* The flight recorder's parity promise, pinned end to end: run once
     with both the live NDJSON tracer and a parity-only recorder
     attached, push the recording through the same segment write /
     read / decode pipeline the [trace decode] CLI uses, and require
     the two byte streams to be identical. *)
  let cfg = tiny ~clients:4 ~duration:5. ~warmup:1. () in
  let probe = Telemetry.Probe.create () in
  Telemetry.Probe.set_recording probe
    {
      Telemetry.Recorder.capacity = 1 lsl 12;
      overflow = Telemetry.Recorder.Grow;
      lifecycle = false;
    };
  let live = Buffer.create (1 lsl 15) in
  ignore
    (Telemetry.Event_bus.subscribe probe.Telemetry.Probe.bus (fun ev ->
         Buffer.add_string live (Telemetry.Event_bus.to_ndjson ev);
         Buffer.add_char live '\n'));
  ignore (Run.run ~probe cfg Scenario.reno);
  let path = Filename.temp_file "burstsim_parity" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      Telemetry.Probe.write_segments probe oc;
      close_out oc;
      let ic = open_in_bin path in
      let segments =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> Telemetry.Recorder.read_segments ic)
      in
      let decoded = Buffer.create (1 lsl 15) in
      List.iter
        (fun seg ->
          let lookup = Telemetry.Recorder.seg_lookup seg in
          Telemetry.Recorder.iter_segment seg (fun ~lane:_ ~seq:_ words off ->
              Buffer.add_string decoded
                (Telemetry.Record.ndjson_of_record ~lookup words off);
              Buffer.add_char decoded '\n'))
        segments;
      Alcotest.(check bool) "live trace non-empty" true (Buffer.length live > 0);
      Alcotest.(check string) "recorder decodes byte-identically"
        (Buffer.contents live) (Buffer.contents decoded))

let run_releases_every_pooled_packet () =
  (* Run.run drains the network at the horizon and fails loudly if any
     packet slot is still live; a normal run across queue disciplines must
     therefore complete without raising. *)
  List.iter
    (fun scenario -> ignore (Run.run (tiny ~clients:8 ~duration:20. ()) scenario))
    [ Scenario.reno; Scenario.reno_red; Scenario.reno_sfq; Scenario.udp ]

let run_deterministic () =
  let cfg = tiny ~clients:5 ~duration:30. () in
  let a = Run.run cfg Scenario.reno and b = Run.run cfg Scenario.reno in
  check_float "cov identical" a.Metrics.cov b.Metrics.cov;
  Alcotest.(check int) "delivered identical" a.Metrics.delivered b.Metrics.delivered;
  Alcotest.(check int) "timeouts identical" a.Metrics.timeouts b.Metrics.timeouts

let run_seed_sensitivity () =
  let cfg = tiny ~clients:5 ~duration:30. () in
  let a = Run.run cfg Scenario.reno in
  let b = Run.run { cfg with Config.seed = 999L } Scenario.reno in
  Alcotest.(check bool) "different seeds differ" true
    (a.Metrics.offered <> b.Metrics.offered || a.Metrics.cov <> b.Metrics.cov)

(* ------------------------------------------------------------------ *)
(* The paper's headline comparisons, at reduced scale *)

let paper_shape_reno_burstier_than_udp () =
  let cfg = tiny ~clients:45 ~duration:120. ~warmup:30. () in
  let reno = Run.run cfg Scenario.reno in
  let udp = Run.run cfg Scenario.udp in
  Alcotest.(check bool)
    (Printf.sprintf "reno cov %.4f > udp cov %.4f" reno.Metrics.cov udp.Metrics.cov)
    true
    (reno.Metrics.cov > 1.3 *. udp.Metrics.cov)

let paper_shape_vegas_smoother_than_reno () =
  let cfg = tiny ~clients:50 ~duration:120. ~warmup:30. () in
  let reno = Run.run cfg Scenario.reno in
  let vegas = Run.run cfg Scenario.vegas in
  Alcotest.(check bool)
    (Printf.sprintf "vegas %.4f < reno %.4f" vegas.Metrics.cov reno.Metrics.cov)
    true
    (vegas.Metrics.cov < reno.Metrics.cov)

let paper_shape_reno_loss_bursts () =
  (* §3.4: Reno generates "large sequences of packet losses"; Vegas does
     not. The longest consecutive-drop run of a single seed is an extreme
     statistic and therefore noisy, so take the max over a few replicate
     seeds before comparing. *)
  let seeds = [ 1L; 2L; 3L ] in
  let max_run scenario =
    List.fold_left
      (fun acc seed ->
        let cfg =
          { (tiny ~clients:55 ~duration:150. ~warmup:30. ()) with Config.seed }
        in
        Stdlib.max acc (Run.run cfg scenario).Metrics.drop_run_max)
      0 seeds
  in
  let reno = max_run Scenario.reno in
  let vegas = max_run Scenario.vegas in
  Alcotest.(check bool)
    (Printf.sprintf "reno max run %d >= vegas max run %d" reno vegas)
    true (reno >= vegas);
  Alcotest.(check bool) "reno has multi-packet bursts" true (reno >= 3)

let paper_shape_timeout_ratio () =
  let cfg = tiny ~clients:50 ~duration:120. ~warmup:30. () in
  let reno = Run.run cfg Scenario.reno in
  let vegas = Run.run cfg Scenario.vegas in
  Alcotest.(check bool) "reno ratio higher" true
    (reno.Metrics.timeout_dupack_ratio > vegas.Metrics.timeout_dupack_ratio)

let run_md1_queue_validation () =
  (* UDP with fixed-size packets through the gateway is literally M/D/1:
     the sampled queue length must match Pollaczek-Khinchine. *)
  let cfg = tiny ~clients:20 ~duration:300. ~warmup:0. () in
  let m = Run.run ~sample_queue:true cfg Scenario.udp in
  let service = 1500. *. 8. /. 5e6 in
  let lambda = 20. /. cfg.Config.mean_interarrival_s in
  let rho = lambda *. service in
  (* The sampler sees waiting packets only (the one in service has left
     the queue), so compare against L - rho. *)
  let expected = Netstats.Queueing.md1_mean_queue ~rho -. rho in
  let measured =
    (Netstats.Series.value_summary (Option.get m.Metrics.queue_series)).Netstats.Summary.mean
  in
  Alcotest.(check bool)
    (Printf.sprintf "measured %.3f vs M/D/1 %.3f" measured expected)
    true
    (measured > 0.7 *. expected && measured < 1.3 *. expected)

let run_sfq_end_to_end () =
  (* A single seed is too noisy for the cov comparison (the two are within
     ~10% of each other), so compare means over a few replicate seeds. *)
  let seeds = [ 1L; 2L; 3L ] in
  let mean_cov scenario =
    let covs =
      List.map
        (fun seed ->
          let cfg =
            { (tiny ~clients:50 ~duration:120. ~warmup:30. ()) with Config.seed }
          in
          let m = Run.run cfg scenario in
          Alcotest.(check bool) "delivers" true (m.Metrics.delivered > 20_000);
          m.Metrics.cov)
        seeds
    in
    List.fold_left ( +. ) 0. covs /. float_of_int (List.length covs)
  in
  let sfq = mean_cov Scenario.reno_sfq in
  let plain = mean_cov Scenario.reno in
  Alcotest.(check bool)
    (Printf.sprintf "sfq mean cov %.4f < reno mean cov %.4f" sfq plain)
    true (sfq < plain)

(* ------------------------------------------------------------------ *)
(* Synchronization *)

let sync_udp_near_zero () =
  let cfg = tiny ~clients:10 ~duration:120. ~warmup:20. () in
  let m = Run.run ~measure_sync:true cfg Scenario.udp in
  match m.Metrics.sync_index with
  | None -> Alcotest.fail "expected sync index"
  | Some v ->
      Alcotest.(check bool) (Printf.sprintf "udp sync %.4f ~ 0" v) true
        (Float.abs v < 0.05)

let sync_reno_heavy_load_positive () =
  let cfg = tiny ~clients:55 ~duration:150. ~warmup:30. () in
  let reno = Run.run ~measure_sync:true cfg Scenario.reno in
  let udp = Run.run ~measure_sync:true cfg Scenario.udp in
  match (reno.Metrics.sync_index, udp.Metrics.sync_index) with
  | Some r, Some u ->
      Alcotest.(check bool)
        (Printf.sprintf "reno sync %.4f > udp sync %.4f + 0.02" r u)
        true
        (r > u +. 0.02)
  | _ -> Alcotest.fail "expected sync indices"

let sync_not_measured_by_default () =
  let cfg = tiny ~clients:3 ~duration:10. () in
  let m = Run.run cfg Scenario.reno in
  Alcotest.(check bool) "none" true (m.Metrics.sync_index = None)

let sync_stagger_and_spread_accepted () =
  let cfg =
    { (tiny ~clients:4 ~duration:20. ()) with
      Config.start_stagger_s = 5.;
      client_delay_spread_s = 0.1 }
  in
  let m = Run.run ~measure_sync:true cfg Scenario.reno in
  Alcotest.(check bool) "runs and measures" true (m.Metrics.sync_index <> None);
  Alcotest.(check bool) "delivers" true (m.Metrics.delivered > 0)

(* ------------------------------------------------------------------ *)
(* Json and Export *)

let json_basic_roundtrip () =
  let v =
    Json.Obj
      [
        ("name", Json.String "reno \"fast\"\n");
        ("count", Json.Int 42);
        ("pi", Json.Float 3.25);
        ("flag", Json.Bool true);
        ("nothing", Json.Null);
        ("xs", Json.List [ Json.Int 1; Json.Float 0.5; Json.String "x" ]);
      ]
  in
  match Json.parse (Json.to_string v) with
  | Ok parsed -> Alcotest.(check bool) "roundtrip" true (parsed = v)
  | Error e -> Alcotest.fail e

let json_parse_errors () =
  (match Json.parse "{\"a\": }" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error");
  (match Json.parse "[1, 2" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error");
  match Json.parse "42 trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error"

let json_member_access () =
  match Json.parse "{\"cov\": 0.25, \"n\": 3}" with
  | Ok v ->
      Alcotest.(check (option (float 1e-9))) "float field" (Some 0.25)
        (Option.bind (Json.member "cov" v) Json.to_float);
      Alcotest.(check (option (float 1e-9))) "int widens" (Some 3.)
        (Option.bind (Json.member "n" v) Json.to_float);
      Alcotest.(check bool) "missing" true (Json.member "zzz" v = None)
  | Error e -> Alcotest.fail e

let json_roundtrip_property =
  QCheck.Test.make ~name:"json roundtrip" ~count:300
    QCheck.(
      let base =
        oneof
          [
            map (fun i -> Json.Int i) small_signed_int;
            map (fun f -> Json.Float f) (float_bound_exclusive 1000.);
            map (fun s -> Json.String s) (string_small_of (Gen.char_range 'a' 'z'));
            map (fun b -> Json.Bool b) bool;
            always Json.Null;
          ]
      in
      map (fun xs -> Json.List xs) (small_list base))
    (fun v -> Json.parse (Json.to_string v) = Ok v)

let export_csv_shape () =
  let cfg = tiny ~clients:2 ~duration:10. () in
  let m = Run.run cfg Scenario.reno in
  let row = Export.metrics_to_csv_row m in
  Alcotest.(check int) "field count"
    (List.length (String.split_on_char ',' Export.csv_header))
    (List.length (String.split_on_char ',' row));
  Alcotest.(check bool) "starts with scenario" true
    (String.length row > 4 && String.sub row 0 4 = "Reno")

let export_json_valid_and_complete () =
  let cfg = tiny ~clients:2 ~duration:10. () in
  let sweep = [ (Scenario.reno, [ Run.run cfg Scenario.reno ]) ] in
  let doc = Json.to_string (Export.sweep_to_json cfg sweep) in
  match Json.parse doc with
  | Error e -> Alcotest.fail e
  | Ok v ->
      Alcotest.(check bool) "has config" true (Json.member "config" v <> None);
      (match Json.member "results" v with
      | Some (Json.List [ r ]) ->
          Alcotest.(check bool) "cov present" true
            (Option.bind (Json.member "cov" r) Json.to_float <> None)
      | _ -> Alcotest.fail "expected one result")

let run_delay_metrics_sane () =
  (* Uncongested: one-way delay ~ 0.5 s propagation + ~4 ms serialization. *)
  let cfg = tiny ~clients:2 ~duration:30. ~warmup:5. () in
  let m = Run.run cfg Scenario.udp in
  Alcotest.(check bool)
    (Printf.sprintf "mean delay %.4f ~ 0.506" m.Metrics.delay_mean_s)
    true
    (m.Metrics.delay_mean_s > 0.5 && m.Metrics.delay_mean_s < 0.53);
  Alcotest.(check bool) "p99 >= mean" true
    (m.Metrics.delay_p99_s >= m.Metrics.delay_mean_s -. 1e-6);
  (* Saturated: the full 50-packet buffer adds 120 ms at the p99. *)
  let cfg60 = tiny ~clients:60 ~duration:40. ~warmup:10. () in
  let m60 = Run.run cfg60 Scenario.udp in
  Alcotest.(check bool)
    (Printf.sprintf "saturated p99 %.3f ~ 0.625" m60.Metrics.delay_p99_s)
    true
    (m60.Metrics.delay_p99_s > 0.6 && m60.Metrics.delay_p99_s < 0.65)

(* ------------------------------------------------------------------ *)
(* Two-way traffic *)

let twoway_oneway_baseline () =
  (* With no reverse flows the wiring must behave like the dumbbell:
     everything offered is delivered, low burstiness inflation. *)
  let cfg = tiny ~clients:6 ~duration:60. ~warmup:10. () in
  let r = Twoway.run cfg ~cc:Scenario.Reno ~reverse_clients:0 in
  Alcotest.(check int) "no reverse traffic" 0 r.Twoway.reverse_delivered;
  Alcotest.(check bool) "forward delivers" true (r.Twoway.forward_delivered > 3000);
  Alcotest.(check (float 0.01)) "no loss" 0. r.Twoway.forward_loss_pct

let twoway_ack_compression_hurts_reno () =
  let cfg = tiny ~clients:30 ~duration:150. ~warmup:30. () in
  let quiet = Twoway.run cfg ~cc:Scenario.Reno ~reverse_clients:0 in
  let busy = Twoway.run cfg ~cc:Scenario.Reno ~reverse_clients:30 in
  Alcotest.(check bool)
    (Printf.sprintf "cov %.4f -> %.4f with reverse load" quiet.Twoway.forward_cov
       busy.Twoway.forward_cov)
    true
    (busy.Twoway.forward_cov > 1.3 *. quiet.Twoway.forward_cov);
  Alcotest.(check bool) "reverse flows deliver" true
    (busy.Twoway.reverse_delivered > 10_000)

let twoway_validates () =
  Alcotest.check_raises "negative" (Invalid_argument "Twoway.run: negative reverse_clients")
    (fun () ->
      ignore (Twoway.run (tiny ()) ~cc:Scenario.Reno ~reverse_clients:(-1)))

(* ------------------------------------------------------------------ *)
(* Parking lot *)

let parking_lone_flow_fills_pipe () =
  (* No cross traffic: a lone Vegas flow approaches the utilization bound
     of a deeply underbuffered path (B = 50 << BDP = 433 packets). *)
  let r =
    Parking_lot.run Config.default ~cc:Scenario.Vegas ~hops:2 ~cross_per_hop:0
      ~duration_s:300.
  in
  Alcotest.(check bool)
    (Printf.sprintf "share %.2f > 0.5" r.Parking_lot.long_share)
    true
    (r.Parking_lot.long_share > 0.5);
  Alcotest.(check (float 0.)) "no cross traffic" 0. r.Parking_lot.cross_throughput_pps

let parking_long_flow_disadvantaged () =
  let r =
    Parking_lot.run Config.default ~cc:Scenario.Reno ~hops:3 ~cross_per_hop:1
      ~duration_s:120.
  in
  Alcotest.(check bool) "long below fair share" true (r.Parking_lot.long_share < 0.9);
  Alcotest.(check bool) "cross beats long" true
    (r.Parking_lot.cross_throughput_pps > r.Parking_lot.long_throughput_pps);
  Alcotest.(check bool) "all flows alive" true (r.Parking_lot.long_throughput_pps > 1.)

let parking_capacity_respected () =
  let cap = 416.67 in
  let r =
    Parking_lot.run Config.default ~cc:Scenario.Vegas ~hops:2 ~cross_per_hop:2
      ~duration_s:120.
  in
  (* Each hop carries the long flow plus its local cross flows. *)
  Alcotest.(check bool) "hop not oversubscribed" true
    (r.Parking_lot.long_throughput_pps
     +. (2. *. r.Parking_lot.cross_throughput_pps)
    < 1.05 *. cap)

let parking_validates () =
  Alcotest.check_raises "hops" (Invalid_argument "Parking_lot.run: hops < 1")
    (fun () ->
      ignore
        (Parking_lot.run Config.default ~cc:Scenario.Reno ~hops:0 ~cross_per_hop:1
           ~duration_s:1.))

(* ------------------------------------------------------------------ *)
(* Sweep *)

let sweep_distinct_seeds () =
  let cfg = tiny () in
  let s1 = Sweep.seed_for cfg Scenario.reno 10 in
  let s2 = Sweep.seed_for cfg Scenario.reno 20 in
  let s3 = Sweep.seed_for cfg Scenario.vegas 10 in
  Alcotest.(check bool) "clients vary seed" true (s1 <> s2);
  Alcotest.(check bool) "scenario varies seed" true (s1 <> s3)

let sweep_over_clients_shapes () =
  let cfg = tiny ~duration:20. ~warmup:5. () in
  let ms = Sweep.over_clients cfg Scenario.udp [ 2; 4 ] in
  Alcotest.(check (list int)) "client counts" [ 2; 4 ]
    (List.map (fun m -> m.Metrics.clients) ms)

(* ------------------------------------------------------------------ *)
(* Figures and rendering *)

let figures_sweep_and_render () =
  let cfg = tiny ~duration:15. ~warmup:5. () in
  let sweep = Figures.run_sweep cfg [ 2; 3 ] in
  Alcotest.(check int) "six scenarios" 6 (List.length sweep);
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  Figures.fig2 ppf sweep cfg;
  Figures.fig3 ppf sweep;
  Figures.fig4 ppf sweep;
  Figures.fig13 ppf sweep;
  Format.pp_print_flush ppf ();
  let out = Buffer.contents buf in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("output mentions " ^ needle) true
        (Astring_like.contains out needle))
    [ "Figure 2"; "Figure 3"; "Figure 4"; "Figure 13"; "Reno/RED"; "Poisson" ]

let render_table_alignment () =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Render.table ppf ~header:[ "a"; "bb" ] ~rows:[ [ "xxx"; "1" ]; [ "y"; "22" ] ];
  Format.pp_print_flush ppf ();
  let lines = String.split_on_char '\n' (Buffer.contents buf) in
  (match lines with
  | header :: sep :: _ ->
      Alcotest.(check bool) "separator dashes" true (String.for_all (( = ) '-') sep);
      Alcotest.(check int) "widths match" (String.length header) (String.length sep)
  | _ -> Alcotest.fail "expected at least two lines")

let render_plot_runs () =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  Render.plot ppf ~height:5 ~width:20 ~x_min:0. ~x_max:10.
    ~series:[ ('*', "up", [| 1.; 2.; 3.; 4. |]); ('o', "down", [| 4.; 3.; 2.; 1. |]) ]
    ();
  Format.pp_print_flush ppf ();
  let out = Buffer.contents buf in
  Alcotest.(check bool) "legend" true (Astring_like.contains out "* = up");
  Alcotest.(check bool) "glyphs plotted" true
    (String.contains out '*' && String.contains out 'o')

(* ------------------------------------------------------------------ *)
(* Selfsim extension *)

let selfsim_poisson_udp_short_memory () =
  let cfg = tiny ~clients:10 ~duration:120. ~warmup:10. () in
  let row = Selfsim.measure cfg Selfsim.Poisson_src Scenario.udp in
  Alcotest.(check bool)
    (Printf.sprintf "H(wavelet)=%.2f near 0.5" row.Selfsim.hurst)
    true
    (row.Selfsim.hurst < 0.7);
  Alcotest.(check bool) "idc available" true (List.length row.Selfsim.idc > 0);
  List.iter
    (fun (m, v) ->
      Alcotest.(check bool)
        (Printf.sprintf "idc populated at m=%d" m)
        true (Option.is_some v))
    row.Selfsim.idc

let selfsim_pareto_raises_hurst () =
  let cfg = tiny ~clients:10 ~duration:120. ~warmup:10. () in
  let poisson = Selfsim.measure cfg Selfsim.Poisson_src Scenario.udp in
  let pareto = Selfsim.measure cfg Selfsim.Pareto_src Scenario.udp in
  Alcotest.(check bool)
    (Printf.sprintf "pareto H %.2f > poisson H %.2f" pareto.Selfsim.hurst
       poisson.Selfsim.hurst)
    true
    (pareto.Selfsim.hurst > poisson.Selfsim.hurst)

(* Pin the streaming Selfsim estimators against the old offline path:
   rebuild the same Poisson/UDP run with a stored-array binner next to
   the streaming aggregators and compare c.o.v. (same adds, same order
   — tight tolerance), the IDC profile and the Hurst estimates. *)
let selfsim_streaming_matches_offline () =
  let module Time = Sim_engine.Time in
  let module Scheduler = Sim_engine.Scheduler in
  let cfg = tiny ~clients:10 ~duration:120. ~warmup:10. () in
  let net = Dumbbell.create cfg Scenario.udp in
  let sched = Dumbbell.scheduler net in
  let horizon = Time.of_sec cfg.Config.duration_s in
  let pool = Dumbbell.pool net and bottleneck = Dumbbell.bottleneck net in
  let binner =
    Netsim.Monitor.arrival_binner pool bottleneck ~origin:cfg.Config.warmup_s
      ~width:Selfsim.bin_width
  in
  let fine =
    Telemetry.Burst.create ~levels:Selfsim.fine_levels
      ~origin:cfg.Config.warmup_s ~width:Selfsim.bin_width ()
  in
  let rtt =
    Telemetry.Burst.create ~levels:1 ~origin:cfg.Config.warmup_s
      ~width:(Config.rtt_prop_s cfg) ()
  in
  Netsim.Monitor.arrival_burst pool bottleneck fine;
  Netsim.Monitor.arrival_burst pool bottleneck rtt;
  List.iter
    (fun i ->
      let rng =
        Sim_engine.Rng.split_named (Dumbbell.rng net)
          (Printf.sprintf "client-%d" i)
      in
      ignore
        (Traffic.Poisson.start sched ~rng
           ~mean_interarrival:cfg.Config.mean_interarrival_s ~start:Time.zero
           ~until:horizon ~sink:(Dumbbell.sink net i)))
    (List.init cfg.Config.clients Fun.id);
  Scheduler.run ~until:horizon sched;
  Telemetry.Burst.advance fine ~upto:cfg.Config.duration_s;
  Telemetry.Burst.advance rtt ~upto:cfg.Config.duration_s;
  let counts = Netstats.Binned.counts binner ~upto:cfg.Config.duration_s in
  (* The old offline c.o.v.: re-aggregate 10 ms bins to the RTT bin. *)
  let per_rtt = int_of_float (Config.rtt_prop_s cfg /. Selfsim.bin_width) in
  let rtt_counts =
    Array.init
      (Array.length counts / per_rtt)
      (fun i ->
        let s = ref 0. in
        for j = 0 to per_rtt - 1 do
          s := !s +. counts.((i * per_rtt) + j)
        done;
        !s)
  in
  let offline_cov = (Netstats.Summary.of_array rtt_counts).Netstats.Summary.cov in
  let streaming_cov = Option.get (Telemetry.Burst.cov rtt 0) in
  Alcotest.(check bool)
    (Printf.sprintf "cov streaming %.9f vs offline %.9f" streaming_cov
       offline_cov)
    true
    (abs_float (streaming_cov -. offline_cov) <= 1e-9);
  (* IDC per dyadic scale vs the offline profile on the stored array
     (pairwise vs sequential summation: float tolerance, not exact). *)
  List.iter
    (fun j ->
      let m = 1 lsl j in
      match (Netstats.Dispersion.idc_profile counts [ m ],
             Telemetry.Burst.idc fine j) with
      | [ (_, Some offline) ], Some streaming ->
          Alcotest.(check bool)
            (Printf.sprintf "idc m=%d streaming %.6f vs offline %.6f" m
               streaming offline)
            true
            (abs_float (streaming -. offline) <= 1e-6 *. (1. +. abs_float offline))
      | _ -> Alcotest.fail (Printf.sprintf "idc missing at m=%d" m))
    [ 0; 4; 7; 10 ];
  (* Both Hurst estimators read short memory on Poisson/UDP. *)
  let h_offline = Netstats.Hurst.estimate_variance_time counts in
  let h_streaming = Option.get (Telemetry.Burst.hurst_wavelet fine) in
  Alcotest.(check bool)
    (Printf.sprintf "H wavelet %.2f and var-time %.2f both near 0.5"
       h_streaming h_offline)
    true
    (abs_float (h_streaming -. 0.5) < 0.2 && abs_float (h_offline -. 0.5) < 0.2)

(* ------------------------------------------------------------------ *)
(* Hybrid fluid/packet engine *)

(* The flow-scaling bench's mean-field shape: 16 pps/flow, 0.2 s
   propagation RTT, RED spanning [N, 7N]. *)
let mean_field_cfg n duration_s =
  let f = float_of_int n in
  {
    (Config.with_clients Config.default n) with
    Config.bottleneck_bandwidth_mbps = 0.192 *. f;
    client_delay_s = 0.05;
    bottleneck_delay_s = 0.05;
    adv_window = 12;
    buffer_packets = 10 * n;
    red_min_th = f;
    red_max_th = 7.0 *. f;
    red_max_p = 0.05;
    duration_s;
    warmup_s = duration_s /. 2.;
  }

let hybrid_dt_halving_convergence =
  (* The coupled step must converge as the quantum shrinks: with the
     packet-side inputs frozen, halving dt moves the state markedly
     closer to a fine-step reference. The projection clamps are
     non-expansive, so this holds across the clamped corners too. *)
  QCheck.Test.make ~name:"coupled step dt-halving convergence" ~count:100
    QCheck.(
      pair
        (quad (int_range 100 5_000) (int_range 2_000 50_000)
           (int_range 50 250) (int_range 500 20_000))
        (quad (int_range 12 64) (int_range 0 50) (int_range 0 50)
           (int_range 0 100)))
    (fun ((n_bg, cap, rtt_ms, buf), (mw, qfrac, mufrac, pmil)) ->
      let p =
        {
          Hybrid.Coupling.n_bg = float_of_int n_bg;
          capacity_pps = float_of_int cap;
          base_rtt_s = float_of_int rtt_ms /. 1000.;
          buffer_packets = float_of_int buf;
          max_window = float_of_int mw;
        }
      in
      let inputs () =
        {
          Hybrid.Coupling.q_pkt =
            float_of_int buf *. float_of_int qfrac /. 100.;
          mu_fg_pps = float_of_int cap *. float_of_int mufrac /. 100.;
          p_drop = float_of_int pmil /. 1000.;
        }
      in
      let horizon = 2. *. p.Hybrid.Coupling.base_rtt_s in
      let final steps =
        let i = inputs () in
        let s = Fluidmodel.Ode.stepper 2 in
        let y = [| 2.; 0. |] in
        let dt = horizon /. float_of_int steps in
        for _ = 1 to steps do
          Hybrid.Coupling.step s p i ~dt y
        done;
        y
      in
      let reference = final 64 in
      let err steps =
        let y = final steps in
        Float.max
          (Float.abs (y.(0) -. reference.(0)))
          (Float.abs (y.(1) -. reference.(1)))
      in
      (* Quartering the quantum must at least halve the error, up to a
         relative slack absorbing the clamp boundaries (where the
         projected dynamics are only first-order accurate but the
         absolute error is already a negligible fraction of the
         state). *)
      let scale =
        1. +. Float.abs reference.(0) +. Float.abs reference.(1)
      in
      err 32 <= (0.5 *. err 8) +. (1e-3 *. scale))

let hybrid_attach_validates () =
  let cfg = tiny () in
  let net = Dumbbell.create cfg Scenario.reno_red in
  let sched = Dumbbell.scheduler net in
  let bottleneck = Dumbbell.bottleneck net in
  Alcotest.check_raises "background < 1"
    (Invalid_argument "Hybrid.attach: cfg.background < 1") (fun () ->
      ignore (Hybrid.attach ~sched ~bottleneck cfg));
  Alcotest.check_raises "quantum <= 0"
    (Invalid_argument "Hybrid.attach: quantum <= 0") (fun () ->
      ignore
        (Hybrid.attach ~quantum_s:0. ~sched ~bottleneck
           { cfg with Config.background = 10 }));
  Dumbbell.reclaim net;
  Dumbbell.release_flows net

let hybrid_run_summary_presence () =
  (* background = 0 keeps the pure-packet path untouched (no summary,
     no coupling state); background >= 1 yields a converging summary. *)
  let cfg = tiny ~clients:4 ~duration:12. ~warmup:4. () in
  let pure = Run.run cfg Scenario.reno_red in
  Alcotest.(check bool) "no hybrid summary without background" true
    (pure.Metrics.hybrid = None);
  let m = Run.run { cfg with Config.background = 100 } Scenario.reno_red in
  match m.Metrics.hybrid with
  | None -> Alcotest.fail "hybrid summary missing with background = 100"
  | Some s ->
      Alcotest.(check int) "background recorded" 100 s.Metrics.background;
      Alcotest.(check bool) "quanta taken" true (s.Metrics.steps > 0);
      Alcotest.(check bool) "background window positive" true
        (s.Metrics.bg_window_mean > 0.);
      Alcotest.(check bool) "slowdown at least 1" true
        (s.Metrics.slowdown_mean >= 1.)

let hybrid_matches_packet_1e3 () =
  (* Short-horizon miniature of the bench validation gate: N = 10^3
     flows, all packet vs 50 packet + 950 fluid. The fluid Reno law has
     no timeouts or sub-RTT burstiness, so the bands are generous; the
     bench enforces the committed ones on longer horizons. *)
  let n = 1_000 and k_fg = 50 in
  let duration_s = 6.0 in
  let measure_from = 0.6 *. duration_s in
  let drive cfg k =
    let module Time = Sim_engine.Time in
    let net = Dumbbell.create cfg Scenario.reno_red in
    let sched = Dumbbell.scheduler net in
    let bottleneck = Dumbbell.bottleneck net in
    let hybrid =
      if cfg.Config.background >= 1 then
        Some (Hybrid.attach ~sched ~bottleneck cfg)
      else None
    in
    for i = 0 to k - 1 do
      ignore
        (Traffic.Bulk.start sched ~size:Traffic.Bulk.infinite_backlog_size
           ~start:(Time.of_sec (0.2 *. float_of_int i /. float_of_int k))
           ~sink:(Dumbbell.sink net i))
    done;
    let delivered_at_mark = ref 0 in
    let arrivals_at_mark = ref 0 in
    let drops_at_mark = ref 0 in
    ignore
      (Sim_engine.Scheduler.at sched (Time.of_sec measure_from) (fun () ->
           delivered_at_mark := Dumbbell.delivered_total net;
           arrivals_at_mark := Netsim.Link.arrivals bottleneck;
           drops_at_mark := Netsim.Link.drops bottleneck));
    Sim_engine.Scheduler.run ~until:(Time.of_sec duration_s) sched;
    let window = duration_s -. measure_from in
    let per_flow_pps =
      float_of_int (Dumbbell.delivered_total net - !delivered_at_mark)
      /. window /. float_of_int k
    in
    let arr = Netsim.Link.arrivals bottleneck - !arrivals_at_mark in
    let drops = Netsim.Link.drops bottleneck - !drops_at_mark in
    let loss_rate =
      if arr = 0 then 0. else float_of_int drops /. float_of_int arr
    in
    ignore hybrid;
    Dumbbell.reclaim net;
    Dumbbell.release_flows net;
    (per_flow_pps, loss_rate)
  in
  let base = mean_field_cfg n duration_s in
  let packet_pps, packet_loss = drive base n in
  let hybrid_pps, hybrid_loss =
    drive
      { (Config.with_clients base k_fg) with Config.background = n - k_fg }
      k_fg
  in
  let ratio = hybrid_pps /. packet_pps in
  Alcotest.(check bool)
    (Printf.sprintf "per-flow throughput ratio %.3f within [0.7, 1.45]" ratio)
    true
    (ratio >= 0.7 && ratio <= 1.45);
  Alcotest.(check bool)
    (Printf.sprintf "loss %.4f vs %.4f within 0.05" hybrid_loss packet_loss)
    true
    (Float.abs (hybrid_loss -. packet_loss) <= 0.05)

let suite =
  [
    ( "core.config",
      [
        Alcotest.test_case "derived quantities" `Quick config_derived_quantities;
        Alcotest.test_case "rejects zero clients" `Quick config_rejects_zero_clients;
        Alcotest.test_case "validate catches bad fields" `Quick
          config_validate_catches_bad_fields;
        Alcotest.test_case "table rendering" `Quick config_pp_mentions_values;
      ] );
    ( "core.scenario",
      [
        Alcotest.test_case "labels" `Quick scenario_labels;
        Alcotest.test_case "series membership" `Quick scenario_series_membership;
        Alcotest.test_case "ecn labels" `Quick scenario_ecn_labels;
      ] );
    ( "core.analytic",
      [
        Alcotest.test_case "poisson cov closed form" `Quick analytic_poisson_cov;
        Alcotest.test_case "cov decreases with aggregation" `Quick
          analytic_cov_decreases_with_clients;
      ] );
    ( "core.fairness",
      [
        Alcotest.test_case "jain index" `Quick fairness_jain;
        Alcotest.test_case "max-min ratio" `Quick fairness_max_min;
      ] );
    ( "core.dumbbell",
      [
        Alcotest.test_case "tcp roundtrip" `Quick dumbbell_tcp_roundtrip;
        Alcotest.test_case "udp roundtrip" `Quick dumbbell_udp_roundtrip;
        Alcotest.test_case "delivery latency" `Quick dumbbell_delivery_latency;
      ] );
    ( "core.run",
      [
        Alcotest.test_case "every scenario smoke" `Quick run_every_scenario_smoke;
        Alcotest.test_case "conservation" `Quick run_conservation;
        Alcotest.test_case "uncongested delivers everything" `Quick
          run_uncongested_delivers_everything;
        Alcotest.test_case "udp cov tracks poisson" `Slow run_udp_cov_tracks_poisson;
        Alcotest.test_case "overload saturates throughput" `Slow
          run_overload_saturates_throughput;
        Alcotest.test_case "cwnd traces" `Quick run_traces_requested_clients;
        Alcotest.test_case "cov confidence interval" `Slow run_cov_ci_present;
        Alcotest.test_case "deterministic" `Quick run_deterministic;
        Alcotest.test_case "pinned trace digest" `Quick run_trace_digest_pinned;
        Alcotest.test_case "pinned trace digest (delack+red, flow table)" `Quick
          run_trace_digest_pinned_flow_table;
        Alcotest.test_case "pinned trace digest (sharded, K-invariant)" `Quick
          run_trace_digest_pinned_sharded;
        Alcotest.test_case "recorder parity with live tracer" `Quick
          run_recorder_parity_with_live_tracer;
        Alcotest.test_case "pool drained after runs" `Quick run_releases_every_pooled_packet;
        Alcotest.test_case "seed sensitivity" `Quick run_seed_sensitivity;
        Alcotest.test_case "ecn end to end" `Slow run_ecn_end_to_end;
        Alcotest.test_case "ared end to end" `Slow run_ared_end_to_end;
        Alcotest.test_case "sack end to end" `Slow run_sack_end_to_end;
        Alcotest.test_case "m/d/1 queue validation" `Slow run_md1_queue_validation;
        Alcotest.test_case "sfq end to end" `Slow run_sfq_end_to_end;
      ] );
    ( "core.hybrid",
      [
        Alcotest.test_case "attach validation" `Quick hybrid_attach_validates;
        Alcotest.test_case "summary presence and shape" `Quick
          hybrid_run_summary_presence;
        Alcotest.test_case "matches packet at N=1e3 (short horizon)" `Slow
          hybrid_matches_packet_1e3;
        QCheck_alcotest.to_alcotest hybrid_dt_halving_convergence;
      ] );
    ( "core.paper_shapes",
      [
        Alcotest.test_case "reno burstier than udp" `Slow paper_shape_reno_burstier_than_udp;
        Alcotest.test_case "vegas smoother than reno" `Slow paper_shape_vegas_smoother_than_reno;
        Alcotest.test_case "reno timeout ratio higher" `Slow paper_shape_timeout_ratio;
        Alcotest.test_case "reno loss bursts longer" `Slow paper_shape_reno_loss_bursts;
      ] );
    ( "core.sync",
      [
        Alcotest.test_case "udp near zero" `Slow sync_udp_near_zero;
        Alcotest.test_case "reno heavy load positive" `Slow sync_reno_heavy_load_positive;
        Alcotest.test_case "off by default" `Quick sync_not_measured_by_default;
        Alcotest.test_case "stagger and spread accepted" `Quick
          sync_stagger_and_spread_accepted;
      ] );
    ( "core.json",
      [
        Alcotest.test_case "roundtrip" `Quick json_basic_roundtrip;
        Alcotest.test_case "parse errors" `Quick json_parse_errors;
        Alcotest.test_case "member access" `Quick json_member_access;
        QCheck_alcotest.to_alcotest json_roundtrip_property;
      ] );
    ( "core.export",
      [
        Alcotest.test_case "csv shape" `Quick export_csv_shape;
        Alcotest.test_case "json valid and complete" `Quick export_json_valid_and_complete;
        Alcotest.test_case "delay metrics sane" `Slow run_delay_metrics_sane;
      ] );
    ( "core.twoway",
      [
        Alcotest.test_case "one-way baseline" `Quick twoway_oneway_baseline;
        Alcotest.test_case "ack compression hurts reno" `Slow
          twoway_ack_compression_hurts_reno;
        Alcotest.test_case "validation" `Quick twoway_validates;
      ] );
    ( "core.parking_lot",
      [
        Alcotest.test_case "lone flow fills the pipe" `Slow parking_lone_flow_fills_pipe;
        Alcotest.test_case "long flow disadvantaged" `Slow parking_long_flow_disadvantaged;
        Alcotest.test_case "capacity respected" `Slow parking_capacity_respected;
        Alcotest.test_case "validation" `Quick parking_validates;
      ] );
    ( "core.sweep",
      [
        Alcotest.test_case "distinct seeds" `Quick sweep_distinct_seeds;
        Alcotest.test_case "over clients" `Quick sweep_over_clients_shapes;
      ] );
    ( "core.figures",
      [
        Alcotest.test_case "sweep and render all figures" `Slow figures_sweep_and_render;
        Alcotest.test_case "table alignment" `Quick render_table_alignment;
        Alcotest.test_case "plot rendering" `Quick render_plot_runs;
      ] );
    ( "core.selfsim",
      [
        Alcotest.test_case "poisson/udp short memory" `Slow selfsim_poisson_udp_short_memory;
        Alcotest.test_case "pareto raises hurst" `Slow selfsim_pareto_raises_hurst;
        Alcotest.test_case "streaming matches offline path" `Slow
          selfsim_streaming_matches_offline;
      ] );
  ]
