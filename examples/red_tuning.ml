(* RED gateway tuning under heavy TCP load.

   §3.4 of the paper finds that RED gateways *increase* TCP's traffic
   modulation and hurt throughput relative to plain drop-tail, and that
   Vegas/RED suffers the worst loss because N Vegas streams try to keep
   alpha*N..beta*N packets queued while RED drops everything above max_th.
   This example sweeps RED's (min_th, max_th) thresholds at 45 clients and
   prints burstiness, throughput and loss next to the drop-tail baseline,
   so you can see whether any threshold setting rescues RED.

   Run with: dune exec examples/red_tuning.exe *)

let clients = 45

let cell m =
  Printf.sprintf "cov=%.4f thr=%d loss=%.2f%%" m.Burstcore.Metrics.cov
    m.Burstcore.Metrics.delivered m.Burstcore.Metrics.loss_pct

let () =
  let base =
    {
      (Burstcore.Config.with_clients Burstcore.Config.default clients) with
      Burstcore.Config.duration_s = 120.;
      warmup_s = 20.;
    }
  in
  Format.printf "RED tuning at %d clients (offered load %.0f%% of bottleneck)@.@."
    clients
    (100. *. Burstcore.Config.offered_load_fraction base);
  let fifo_reno = Burstcore.Run.run base Burstcore.Scenario.reno in
  let fifo_vegas = Burstcore.Run.run base Burstcore.Scenario.vegas in
  Format.printf "%-22s Reno  %s@." "drop-tail (baseline)" (cell fifo_reno);
  Format.printf "%-22s Vegas %s@.@." "" (cell fifo_vegas);
  List.iter
    (fun (min_th, max_th) ->
      let cfg =
        { base with Burstcore.Config.red_min_th = min_th; red_max_th = max_th }
      in
      let reno = Burstcore.Run.run cfg Burstcore.Scenario.reno_red in
      let vegas = Burstcore.Run.run cfg Burstcore.Scenario.vegas_red in
      Format.printf "%-22s Reno  %s@."
        (Printf.sprintf "RED (%g, %g)" min_th max_th)
        (cell reno);
      Format.printf "%-22s Vegas %s@.@." "" (cell vegas))
    [ (5., 15.); (10., 40.); (25., 45.) ];
  Format.printf
    "Expected shape (paper §3.4): every RED row is burstier and/or lossier@.";
  Format.printf
    "than its drop-tail counterpart; raising max_th towards the physical@.";
  Format.printf "buffer softens but does not remove the penalty.@."
