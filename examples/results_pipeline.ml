(* A results pipeline: run an experiment, inspect the packet trace, and
   export machine-readable output.

   Demonstrates the instrumentation surface of the library: the [prepare]
   hook for attaching an ns-style tracer to the bottleneck, trace
   analysis (per-flow arrivals/drops, delivered bytes), and the JSON/CSV
   exporters whose documents embed the full configuration for exact
   reproduction.

   Run with: dune exec examples/results_pipeline.exe *)

let () =
  let cfg =
    {
      (Burstcore.Config.with_clients Burstcore.Config.default 40) with
      Burstcore.Config.duration_s = 60.;
      warmup_s = 10.;
    }
  in
  let tracer = Netsim.Tracer.create () in
  let metrics =
    Burstcore.Run.run
      ~prepare:(fun net ->
        Netsim.Tracer.attach tracer (Burstcore.Dumbbell.pool net)
                  (Burstcore.Dumbbell.bottleneck net))
      cfg Burstcore.Scenario.reno
  in
  Format.printf "run: %a@.@." Burstcore.Metrics.pp_row metrics;

  (* --- trace analysis ------------------------------------------- *)
  Format.printf "trace: %d events on the bottleneck@." (Netsim.Tracer.length tracer);
  let drops = Netsim.Tracer.per_flow_counts tracer Netsim.Tracer.Drop in
  let victims =
    Hashtbl.fold (fun flow n acc -> (flow, n) :: acc) drops []
    |> List.sort (fun (_, a) (_, b) -> Int.compare b a)
  in
  Format.printf "flows that lost packets: %d of %d@." (List.length victims)
    cfg.Burstcore.Config.clients;
  List.iteri
    (fun i (flow, n) ->
      if i < 5 then Format.printf "  client %-3d lost %d packets@." (flow + 1) n)
    victims;
  let bytes =
    Netsim.Tracer.delivered_bytes_between tracer ~link:"bottleneck" 10.
      cfg.Burstcore.Config.duration_s
  in
  Format.printf "bytes through the bottleneck after warm-up: %.1f MB@.@."
    (float_of_int bytes /. 1e6);

  (* --- machine-readable export ----------------------------------- *)
  let doc =
    Burstcore.Json.to_string
      (Burstcore.Json.Obj
         [
           ("config", Burstcore.Export.config_to_json cfg);
           ("metrics", Burstcore.Export.metrics_to_json metrics);
         ])
  in
  Burstcore.Export.write_file "results_pipeline.json" doc;
  Format.printf "wrote results_pipeline.json (%d bytes)@." (String.length doc);
  Format.printf "csv row:@.%s@.%s@." Burstcore.Export.csv_header
    (Burstcore.Export.metrics_to_csv_row metrics)
