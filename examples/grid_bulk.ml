(* Earth System Grid scenario: bulk file transfers over a shared bottleneck.

   The paper's introduction motivates the study with high-speed distributed
   computing (the Earth System Grid): many sites pushing large files
   through shared links. This example replaces the Poisson sources with
   bulk transfers — every client starts a 2000-packet (3 MB) file at time
   zero — and compares how TCP Reno and TCP Vegas share the bottleneck:
   per-client completion times, Jain fairness, and retransmission overhead.

   Run with: dune exec examples/grid_bulk.exe *)

module Time = Sim_engine.Time
module Scheduler = Sim_engine.Scheduler

let file_packets = 2000
let clients = 8

let run scenario =
  let cfg =
    {
      (Burstcore.Config.with_clients Burstcore.Config.default clients) with
      Burstcore.Config.duration_s = 2000.;
    }
  in
  let net = Burstcore.Dumbbell.create cfg scenario in
  let sched = Burstcore.Dumbbell.scheduler net in
  (* Start every transfer at t = 0. *)
  List.iter
    (fun i ->
      ignore
        (Traffic.Bulk.start sched ~size:file_packets ~start:Time.zero
           ~sink:(Burstcore.Dumbbell.sink net i)))
    (List.init clients Fun.id);
  (* Poll for per-client completion times. *)
  let completion = Array.make clients nan in
  let rec poll () =
    let delivered = Burstcore.Dumbbell.per_client_delivered net in
    Array.iteri
      (fun i d ->
        if d >= file_packets && Float.is_nan completion.(i) then
          completion.(i) <- Time.to_sec (Scheduler.now sched))
      delivered;
    if Array.exists Float.is_nan completion then
      ignore (Scheduler.after sched (Time.of_sec 1.) poll)
  in
  poll ();
  Scheduler.run ~until:(Time.of_sec cfg.Burstcore.Config.duration_s) sched;
  let stats = Burstcore.Dumbbell.tcp_stats_total net in
  (completion, stats)

let () =
  Format.printf
    "Grid bulk transfer: %d clients x %d packets (%.1f MB each) through 5 Mbps@.@."
    clients file_packets
    (float_of_int (file_packets * 1500) /. 1e6);
  (* Ideal: aggregate 8 x 3MB = 24 MB at 5 Mbps ~ 38.4 s if perfectly shared. *)
  let ideal =
    float_of_int (clients * file_packets * 1500 * 8) /. 5e6
  in
  Format.printf "ideal aggregate completion (perfect sharing): %.1f s@.@." ideal;
  List.iter
    (fun (label, scenario) ->
      let completion, stats = run scenario in
      let finished = Array.for_all (fun c -> not (Float.is_nan c)) completion in
      if not finished then
        Format.printf "%-6s did not finish within the horizon!@." label
      else begin
        let s = Netstats.Summary.of_array completion in
        Format.printf
          "%-6s completion: first %.1f s, last %.1f s, mean %.1f s | fairness \
           (jain on 1/time) %.3f | rtx %d, timeouts %d@."
          label s.Netstats.Summary.min s.Netstats.Summary.max s.Netstats.Summary.mean
          (Burstcore.Fairness.jain (Array.map (fun c -> 1. /. c) completion))
          stats.Transport.Tcp_stats.retransmits stats.Transport.Tcp_stats.timeouts
      end)
    [ ("Reno", Burstcore.Scenario.reno); ("Vegas", Burstcore.Scenario.vegas) ];
  Format.printf
    "@.Vegas finishes the batch with far fewer retransmissions and a tighter@.";
  Format.printf "completion spread - the fairness §3.3 of the paper reports.@.";
  Format.printf
    "@.Note the gap to ideal: each flow is capped by its 20-packet advertised@.";
  Format.printf
    "window over a 1 s RTT (20 pkt/s = 240 kbps), so the batch is window-@.";
  Format.printf
    "limited, not bandwidth-limited - the phenomenon the authors' companion@.";
  Format.printf
    "paper ('The Failure of TCP in High-Performance Computational Grids')@.";
  Format.printf "is about.@."
