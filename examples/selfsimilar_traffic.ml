(* Self-similarity: where this paper meets the Leland/Paxson literature.

   The studies the paper critiques characterize traffic by its Hurst
   parameter. This example aggregates 20 clients of either Poisson or
   heavy-tailed Pareto-on/off traffic over UDP and TCP Reno, estimates H
   two ways (rescaled-range and variance-time) from 10 ms gateway arrival
   counts, and prints the index of dispersion across timescales.

   Expected shape:
     - Poisson over UDP:  H ~ 0.5, flat IDC (short-range dependent).
     - Pareto over UDP:   H well above 0.5, growing IDC (self-similar,
                          the Willinger on/off construction).
     - TCP modulation raises burstiness metrics relative to UDP even for
       Poisson input - the paper's point that the *protocol*, not just
       the workload, shapes the traffic.

   Run with: dune exec examples/selfsimilar_traffic.exe *)

let () =
  let cfg =
    {
      (Burstcore.Config.with_clients Burstcore.Config.default 20) with
      Burstcore.Config.duration_s = 300.;
      warmup_s = 20.;
    }
  in
  Burstcore.Selfsim.report Format.std_formatter cfg;
  Format.printf
    "@.H (R/S) and H (var-time) are Hurst estimates: 0.5 = memoryless,@.";
  Format.printf
    "-> 1 = strongly self-similar. IDC m:v is the index of dispersion@.";
  Format.printf
    "for counts over blocks of m bins (bin = 10 ms); Poisson stays near 1@.";
  Format.printf "at every scale, self-similar traffic grows with m.@."
