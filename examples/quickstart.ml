(* Quickstart: the smallest useful burstsim program.

   Builds the paper's dumbbell topology at a moderate load, runs TCP Reno
   and TCP Vegas over identical Poisson workloads, and prints the paper's
   headline metrics side by side.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* Table 1 parameters, 50 clients (heavy congestion), full 200 s run:
     the regime where the paper's effect is unmistakable. *)
  let cfg = Burstcore.Config.with_clients Burstcore.Config.default 50 in
  Format.printf "Dumbbell: %d clients -> 5 Mbps bottleneck, %g s simulated@.@."
    cfg.Burstcore.Config.clients cfg.Burstcore.Config.duration_s;
  let scenarios =
    [ Burstcore.Scenario.udp; Burstcore.Scenario.reno; Burstcore.Scenario.vegas ]
  in
  List.iter
    (fun scenario ->
      let m = Burstcore.Run.run cfg scenario in
      Format.printf "%a@." Burstcore.Metrics.pp_row m)
    scenarios;
  Format.printf
    "@.The c.o.v. column is the paper's burstiness metric: packets arriving@.";
  Format.printf
    "at the gateway per round-trip time, std/mean. UDP should sit at the@.";
  Format.printf
    "Poisson baseline; TCP sits above it because congestion control@.";
  Format.printf "modulates the traffic (the paper's central observation).@."
